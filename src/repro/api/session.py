"""The unified session façade: one lifecycle for batch and streaming runs.

:class:`FactCheckSession` fronts the paper's two workflows — the batch
validation loop (Alg. 1) and streaming claim arrival (Alg. 2) — behind a
single ``open → step/observe → checkpoint → close`` lifecycle driven by a
declarative :class:`~repro.api.specs.SessionSpec`:

* **batch** — :meth:`step` runs one validation iteration; :meth:`run`
  drives the whole loop with correct stop reasons (goal / budget /
  exhausted / early termination).
* **streaming** — :meth:`observe` ingests one claim arrival with online
  EM; :meth:`validate` runs an interleaved validation burst on the current
  snapshot (parameters exchanged both ways, §7); :meth:`run` replays a
  whole arrival sequence with periodic bursts.

Either mode checkpoints with :meth:`save` and resumes with
:meth:`FactCheckSession.load`; a resumed session continues the exact RNG
streams and reproduces the uninterrupted run bit-for-bit.  Claims are
addressed by their stable string identifier everywhere on this surface
(dense indices are accepted too and mapped internally).  :meth:`close`
returns a :class:`SessionResult` — the single result type shared by both
modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.crf.weights import CrfWeights
from repro.data.database import FactDatabase
from repro.data.grounding import Grounding
from repro.errors import CheckpointError, SessionError
from repro.streaming.process import StreamUpdate
from repro.streaming.stream import ClaimArrival
from repro.utils.rng import derive_rng, ensure_rng, rng_state, set_rng_state
from repro.validation.oracle import User
from repro.validation.session import IterationRecord, ValidationTrace

from repro.api import checkpoint as ckpt
from repro.api.build import (
    build_checker,
    build_icrf,
    build_process,
    build_user,
    resolve_database,
)
from repro.api.specs import SessionSpec


@dataclass
class SessionResult:
    """Outcome of one fact-checking session — batch or streaming.

    Attributes:
        mode: ``"batch"`` or ``"streaming"``.
        stop_reason: Why the session ended (``goal`` / ``budget`` /
            ``exhausted`` / ``max_iterations`` / a termination-criterion
            name / ``stream_end`` / ``closed``).
        num_claims: Claims known when the session closed.
        num_labelled: Claims carrying a user label.
        final_precision: True precision of the final grounding when ground
            truth is available, else ``None``.
        validated_claim_ids: Stable identifiers of all validated claims,
            in validation order (the §2.2 validation sequence).
        trace: The unified per-iteration trace; streaming sessions collect
            the records of every interleaved validation burst here.
        stream_updates: Per-arrival online-EM updates (empty for batch).
        weights: Final model parameters W.
    """

    mode: str
    stop_reason: str
    num_claims: int
    num_labelled: int
    final_precision: Optional[float]
    validated_claim_ids: List[str]
    trace: Optional[ValidationTrace]
    stream_updates: List[StreamUpdate] = field(default_factory=list)
    weights: Optional[CrfWeights] = None

    def to_dict(self) -> dict:
        """Summary rendering (weights and traces reduced to plain lists)."""
        return {
            "mode": self.mode,
            "stop_reason": self.stop_reason,
            "num_claims": self.num_claims,
            "num_labelled": self.num_labelled,
            "final_precision": self.final_precision,
            "validated_claim_ids": list(self.validated_claim_ids),
            "iterations": 0 if self.trace is None else self.trace.iterations,
            "arrivals": len(self.stream_updates),
        }


class FactCheckSession:
    """Unified entry point for guided fact checking (see module docstring).

    Args:
        spec: Declarative configuration; fully determines the run together
            with the corpus.
        database: The corpus to check.  Optional when ``spec.dataset`` is
            set (the session then materialises it); ignored in streaming
            mode, where claims arrive through :meth:`observe`.
        user: Validating user.  Defaults to the simulated oracle described
            by ``spec.user``; pass a custom :class:`User` to plug in crowd
            consensus or a real frontend (such sessions cannot be
            checkpointed unless the user implements ``state_dict`` /
            ``load_state_dict``).
    """

    def __init__(
        self,
        spec: SessionSpec,
        database: Optional[FactDatabase] = None,
        user: Optional[User] = None,
    ) -> None:
        if not isinstance(spec, SessionSpec):
            raise SessionError("FactCheckSession needs a SessionSpec")
        self._spec = spec
        self._status = "new"
        self._explicit_database = database
        self._database_from_spec = False
        self._explicit_user = user
        self._user: Optional[User] = None
        self._result: Optional[SessionResult] = None
        # Batch internals.
        self._process = None
        # Streaming internals.
        self._checker = None
        self._rng: Optional[np.random.Generator] = None
        self._updates: List[StreamUpdate] = []
        self._records: List[IterationRecord] = []
        self._validated: List[str] = []
        self._since_validation = 0
        # Whether any arrival came from outside the declared stream
        # source; such sessions cannot use compact (replayable)
        # checkpoints because the source cannot regenerate the entities.
        self._external_arrivals = False
        self._replaying_source = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def spec(self) -> SessionSpec:
        """The declarative configuration of this session."""
        return self._spec

    @property
    def mode(self) -> str:
        """``"batch"`` or ``"streaming"``."""
        return self._spec.mode

    @property
    def status(self) -> str:
        """Lifecycle state: ``new`` / ``open`` / ``closed``."""
        return self._status

    @property
    def database(self) -> FactDatabase:
        """The current corpus (streaming: the snapshot over all arrivals)."""
        self._require_built()
        if self.mode == "batch":
            return self._process.database
        return self._checker.database

    @property
    def trace(self) -> ValidationTrace:
        """The unified validation trace."""
        self._require_built()
        if self.mode == "batch":
            return self._process.trace
        return self._streaming_trace()

    @property
    def process(self):
        """The underlying :class:`ValidationProcess` (batch mode only)."""
        self._require_built()
        self._require_mode("batch", "process")
        return self._process

    @property
    def checker(self):
        """The underlying :class:`StreamingFactChecker` (streaming only)."""
        self._require_built()
        self._require_mode("streaming", "checker")
        return self._checker

    def claim_index(self, claim: Union[str, int]) -> int:
        """Dense index of a claim given by identifier or index."""
        if isinstance(claim, str):
            return self.database.claim_position(claim)
        return int(claim)

    def claim_id(self, claim: Union[str, int]) -> str:
        """Stable identifier of a claim given by identifier or index."""
        if isinstance(claim, str):
            return claim
        return self.database.claim_id(int(claim))

    def current_precision(self) -> Optional[float]:
        """True precision of the current grounding, when truth is known."""
        self._require_built()
        if self.mode == "batch":
            return self._process.current_precision()
        return self._streaming_precision()

    # ------------------------------------------------------------------
    # Lifecycle: open
    # ------------------------------------------------------------------

    def open(self) -> "FactCheckSession":
        """Build the object graph and (batch) run the initial inference."""
        if self._status == "open":
            return self
        if self._status == "closed":
            raise SessionError("session is closed; create or load a new one")
        self._build(resume=None)
        self._status = "open"
        return self

    def _build(self, resume: Optional[dict]) -> None:
        spec = self._spec
        root = ensure_rng(spec.seed)
        if spec.mode == "batch":
            database = resolve_database(spec, self._explicit_database)
            self._database_from_spec = (
                self._explicit_database is None and spec.dataset is not None
            )
            self._user = (
                self._explicit_user
                if self._explicit_user is not None
                else build_user(spec.user, seed=derive_rng(root, 0))
            )
            icrf = build_icrf(database, spec.inference, seed=derive_rng(root, 1))
            self._process = build_process(
                database, spec, user=self._user, icrf=icrf, seed=derive_rng(root, 2)
            )
            if resume is None:
                self._process.initialize()
            else:
                self._process.load_state_dict(resume["process"])
                self._validated = list(resume.get("validated", []))
        else:
            self._rng = root
            self._user = (
                self._explicit_user
                if self._explicit_user is not None
                else build_user(spec.user, seed=derive_rng(root, 0))
            )
            self._checker = build_checker(spec, seed=derive_rng(root, 1))
            if resume is not None:
                if "stream_position" in resume:
                    # Compact checkpoint: regenerate the entity sets by
                    # replaying the declared source, then overlay the
                    # saved mutable state.
                    source = spec.stream.source
                    if source is None:
                        raise CheckpointError(
                            "checkpoint stores a stream position but the "
                            "spec declares no stream source; the streamed "
                            "entities cannot be regenerated"
                        )
                    position = int(resume["stream_position"])
                    replayed = self._checker.replay_structure(
                        islice(source.arrivals(), position)
                    )
                    if replayed != position:
                        raise CheckpointError(
                            f"stream source yielded only {replayed} of the "
                            f"{position} arrivals recorded in the checkpoint "
                            f"(was the source's dataset changed?)"
                        )
                    self._checker.load_mutable_state(resume["checker"])
                else:
                    self._checker.load_state_dict(resume["checker"])
                    if spec.stream.source is not None:
                        # Entities were embedded despite a declared
                        # source: arrivals came from outside it, so the
                        # resumed session must not trust the position.
                        self._external_arrivals = True
                set_rng_state(self._rng, resume["session_rng"])
                if resume.get("user") is not None and hasattr(
                    self._user, "load_state_dict"
                ):
                    self._user.load_state_dict(resume["user"])
                self._updates = [
                    ckpt.stream_update_from_dict(entry)
                    for entry in resume["updates"]
                ]
                self._records = ckpt.records_from_dicts(resume["records"])
                self._validated = list(resume["validated"])
                self._since_validation = int(resume["since_validation"])

    def __enter__(self) -> "FactCheckSession":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._status == "open":
            self.close()

    # ------------------------------------------------------------------
    # Batch stepping
    # ------------------------------------------------------------------

    def step(self) -> IterationRecord:
        """Run one validation iteration (Alg. 1 lines 6–19; batch mode)."""
        self._require_open()
        self._require_mode("batch", "step")
        return self._process.step()

    # ------------------------------------------------------------------
    # Streaming: observe and interleaved validation
    # ------------------------------------------------------------------

    def observe(self, arrival: ClaimArrival) -> StreamUpdate:
        """Ingest one claim arrival with online EM (Alg. 2; streaming)."""
        self._require_open()
        self._require_mode("streaming", "observe")
        if not self._replaying_source:
            self._external_arrivals = True
        update = self._checker.observe(arrival)
        self._updates.append(update)
        self._since_validation += 1
        return update

    def validate(self, count: int = 1) -> List[IterationRecord]:
        """Run a validation burst on the current snapshot (streaming).

        A fresh Alg. 1 process is assembled over the snapshot database
        with the online model's parameters (Alg. 2 line 7), up to
        ``count`` claims are validated, the labels are registered with the
        online model by claim id, and the refined parameters are handed
        back (Alg. 2 line 10).
        """
        self._require_open()
        self._require_mode("streaming", "validate")
        if count < 1:
            raise SessionError("validate count must be at least 1")
        snapshot = self._checker.database
        records: List[IterationRecord] = []
        if snapshot.unlabelled_indices.size == 0:
            return records
        icrf = build_icrf(
            snapshot, self._spec.inference, seed=derive_rng(self._rng, 0)
        )
        weights = self._checker.weights
        if weights is not None:
            icrf.set_weights(weights)
        process = build_process(
            snapshot,
            self._spec,
            user=self._user,
            icrf=icrf,
            seed=derive_rng(self._rng, 1),
        )
        process.initialize()
        for _ in range(count):
            if snapshot.unlabelled_indices.size == 0:
                break
            if process.goal.satisfied(process):
                break
            record = process.step()
            for claim_id, value in zip(record.claim_ids, record.user_values):
                self._checker.record_label(claim_id, value)
                self._validated.append(claim_id)
            self._records.append(record)
            records.append(record)
        self._checker.receive_weights(icrf.weights)
        self._since_validation = 0
        return records

    def ingest(
        self,
        arrivals: Iterable[ClaimArrival],
        on_update=None,
        after_arrival=None,
    ) -> List[StreamUpdate]:
        """Observe a sequence of arrivals with the spec's interleave schedule.

        The canonical streaming loop shared by :meth:`run` and the service
        layer: each arrival is observed, and a validation burst of
        ``spec.stream.validation_every`` claims is interleaved after every
        that many arrivals (Alg. 2 with §7 parameter exchange).  A stream
        delivered across any number of ``ingest`` calls behaves exactly
        like one uninterrupted call.

        Args:
            arrivals: The claim arrivals to observe, in order.
            on_update: Callable invoked with each :class:`StreamUpdate` as
                it is produced (before any interleaved validation).
            after_arrival: Callable invoked after the arrival is fully
                processed — interleaved validation included — which is the
                consistent point for periodic checkpoints.
        """
        self._require_open()
        self._require_mode("streaming", "ingest")
        every = self._spec.stream.validation_every
        updates: List[StreamUpdate] = []
        for arrival in arrivals:
            update = self.observe(arrival)
            updates.append(update)
            if on_update is not None:
                on_update(update)
            if every is not None and self._since_validation >= every:
                self.validate(every)
            if after_arrival is not None:
                after_arrival(update)
        return updates

    def ingest_from_source(
        self,
        count: Optional[int] = None,
        on_update=None,
        after_arrival=None,
    ) -> List[StreamUpdate]:
        """Observe the next arrivals of the spec's declared stream source.

        The session tracks its position on the replayable stream declared
        by ``spec.stream.source`` (a
        :class:`~repro.api.specs.StreamSourceSpec`) and resumes from
        wherever the previous call — or a restored checkpoint — left off.
        Sessions driven exclusively through this method checkpoint in the
        compact form: :meth:`save` stores the stream fingerprint and
        position instead of embedding every streamed entity.

        Args:
            count: How many arrivals to observe; ``None`` consumes the
                stream to its end.
            on_update: As in :meth:`ingest`.
            after_arrival: As in :meth:`ingest`.

        Raises:
            SessionError: When the spec declares no stream source, when
                ``count`` is not positive, or when the session already
                observed arrivals from outside the source (the stream
                position would no longer describe the session's state).
        """
        self._require_open()
        self._require_mode("streaming", "ingest_from_source")
        source = self._spec.stream.source
        if source is None:
            raise SessionError(
                "ingest_from_source needs spec.stream.source (a "
                "StreamSourceSpec declaring the replayable stream)"
            )
        if count is not None and count < 1:
            raise SessionError("ingest_from_source count must be at least 1")
        if self._external_arrivals:
            raise SessionError(
                "this session observed arrivals outside its declared "
                "stream source; the stream position is meaningless — "
                "keep driving it with observe()/ingest()"
            )
        skip = self._checker.arrivals
        stop = None if count is None else skip + count
        arrivals = islice(source.arrivals(), skip, stop)
        self._replaying_source = True
        try:
            return self.ingest(
                arrivals, on_update=on_update, after_arrival=after_arrival
            )
        finally:
            self._replaying_source = False

    def record_label(self, claim: Union[str, int], value: int) -> None:
        """Register external user input for a claim (id or index)."""
        self._require_open()
        if self.mode == "streaming":
            claim_id = self.claim_id(claim)
            self._checker.record_label(claim_id, value)
            self._validated.append(claim_id)
        else:
            index = self.claim_index(claim)
            self._process.database.label(index, value)
            self._validated.append(self._process.database.claim_id(index))

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------

    def run(
        self,
        arrivals: Optional[Iterable[ClaimArrival]] = None,
        max_iterations: Optional[int] = None,
        on_iteration=None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path=None,
    ) -> SessionResult:
        """Drive the session to completion and close it.

        Batch mode runs Alg. 1 until goal, budget, exhaustion, or early
        termination — the stop reason is always recorded on the trace.
        Streaming mode consumes ``arrivals``, interleaving a validation
        burst after every ``spec.stream.validation_every`` arrivals.

        Args:
            arrivals: The claim stream.  Streaming sessions whose spec
                declares a ``stream.source`` may omit it — the remaining
                arrivals are then replayed from the source; otherwise it
                is required in streaming mode.
            max_iterations: Batch-mode cap on total trace iterations.
            on_iteration: Callable invoked with every
                :class:`IterationRecord` (batch) or :class:`StreamUpdate`
                (streaming) as it is produced.
            checkpoint_every: Auto-checkpoint the session after every N
                iterations (batch) or arrivals (streaming), and once more
                when the run finishes.  Checkpoints are taken at points
                where the full mutable state reflects the work done, so
                :meth:`load` + :meth:`run` from any of them reproduces the
                uninterrupted run bit-for-bit.
            checkpoint_path: Where auto-checkpoints are written (required
                with ``checkpoint_every``; ``.gz`` paths are compressed).
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise SessionError("checkpoint_every must be at least 1 (or None)")
        if checkpoint_every is not None and checkpoint_path is None:
            raise SessionError("checkpoint_every needs a checkpoint_path")
        if self._status == "new":
            self.open()
        self._require_open()
        if self.mode == "batch":
            if arrivals is not None:
                raise SessionError("batch sessions take no arrivals; use mode='streaming'")
            after_iteration = None
            if checkpoint_every is not None:
                completed = [0]

                def after_iteration(record) -> None:
                    completed[0] += 1
                    if completed[0] % checkpoint_every == 0:
                        self.save(checkpoint_path)

            self._process.run(
                max_iterations=max_iterations,
                on_iteration=on_iteration,
                after_iteration=after_iteration,
            )
        else:
            if arrivals is None and self._spec.stream.source is None:
                raise SessionError(
                    "streaming sessions need an arrival iterable (or a "
                    "spec.stream.source to replay)"
                )
            after_arrival = None
            if checkpoint_every is not None:
                observed = [0]

                def after_arrival(update) -> None:
                    observed[0] += 1
                    if observed[0] % checkpoint_every == 0:
                        self.save(checkpoint_path)

            if arrivals is None:
                self.ingest_from_source(
                    on_update=on_iteration, after_arrival=after_arrival
                )
            else:
                self.ingest(
                    arrivals, on_update=on_iteration, after_arrival=after_arrival
                )
        if checkpoint_every is not None:
            self.save(checkpoint_path)
        return self.close()

    # ------------------------------------------------------------------
    # Lifecycle: close
    # ------------------------------------------------------------------

    def close(self) -> SessionResult:
        """Finalise the session and return the unified result.

        Releases engine-held process resources (the sharded backend's
        worker pool) on the way out; the session stays readable.
        """
        if self._status == "closed":
            assert self._result is not None
            return self._result
        self._require_open()
        self._result = self._build_result()
        self._status = "closed"
        self.release_engines()
        return self._result

    def release_engines(self) -> None:
        """Close every engine memoised on this session's models.

        Worker pools (``engine="sharded"``) hold OS processes; the
        service layer calls this on eviction and shutdown so pools never
        outlive their session.  Safe on any session state — a released
        engine rebuilds its pool lazily if the session keeps running.
        """
        from repro.inference.engine import release_model_engines

        if self._process is not None:
            self._process.close()
            release_model_engines(self._process.icrf.model)
        if self._checker is not None and self._checker.model is not None:
            release_model_engines(self._checker.model)

    def result(self) -> SessionResult:
        """The session result (closing the session if still open)."""
        if self._status == "closed":
            assert self._result is not None
            return self._result
        return self.close()

    def result_snapshot(self) -> SessionResult:
        """A result describing the state *so far*, without closing.

        Safe to call repeatedly on an open session (the service layer
        serves ``GET .../result`` from it): nothing is mutated, stepping
        and observing continue afterwards, and an open mid-run batch
        session honestly reports ``stop_reason="unfinished"``.  On a
        closed session this is simply the final result.
        """
        self._require_built()
        if self._status == "closed":
            assert self._result is not None
            return self._result
        return self._build_result(closing=False)

    def _build_result(self, closing: bool = True) -> SessionResult:
        if self.mode == "batch":
            process = self._process
            trace = process.trace
            if closing:
                if trace.stop_reason == "unfinished":
                    trace.stop_reason = "closed"
                if trace.final_grounding is None and process._grounding is not None:
                    trace.final_grounding = process._grounding
            else:
                # Snapshot: same content, but leave the live trace
                # untouched so the session can keep running.
                trace = ValidationTrace(
                    num_claims=trace.num_claims,
                    initial_precision=trace.initial_precision,
                    initial_entropy=trace.initial_entropy,
                    records=list(trace.records),
                    final_grounding=(
                        trace.final_grounding
                        if trace.final_grounding is not None
                        else process._grounding
                    ),
                    stop_reason=trace.stop_reason,
                )
            # Iteration-validated claims first, then labels registered
            # externally through record_label().
            validated = [
                claim_id
                for record in trace.records
                for claim_id in record.claim_ids
            ] + list(self._validated)
            return SessionResult(
                mode="batch",
                stop_reason=trace.stop_reason,
                num_claims=process.database.num_claims,
                num_labelled=process.database.num_labelled,
                final_precision=process.current_precision(),
                validated_claim_ids=validated,
                trace=trace,
                stream_updates=[],
                weights=process.icrf.weights.copy(),
            )
        trace = self._streaming_trace()
        if self._updates:
            trace.stop_reason = "stream_end"
        else:
            trace.stop_reason = "closed" if closing else "unfinished"
        weights = self._checker.weights
        num_claims = 0
        num_labelled = 0
        if self._updates:
            database = self._checker.database
            num_claims = database.num_claims
            num_labelled = database.num_labelled
        return SessionResult(
            mode="streaming",
            stop_reason=trace.stop_reason,
            num_claims=num_claims,
            num_labelled=num_labelled,
            final_precision=self._streaming_precision(),
            validated_claim_ids=list(self._validated),
            trace=trace,
            stream_updates=list(self._updates),
            weights=weights,
        )

    def _streaming_trace(self) -> ValidationTrace:
        num_claims = 0
        if self._checker is not None and self._updates:
            num_claims = self._checker.database.num_claims
        return ValidationTrace(
            num_claims=max(num_claims, 1),
            initial_precision=None,
            initial_entropy=0.0,
            records=list(self._records),
        )

    def _streaming_precision(self) -> Optional[float]:
        if not self._updates:
            return None
        database = self._checker.database
        try:
            truth = database.truth_vector()
        except Exception:
            return None
        grounding = Grounding.from_probabilities(database.probabilities)
        return grounding.precision(truth)

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def save(self, path, compress: Optional[bool] = None) -> None:
        """Write a checkpoint from which :meth:`load` resumes bit-for-bit.

        Available while the session is open *or* closed (a checkpoint of a
        finished run restores its final state); loading always yields an
        open session.

        Batch sessions whose corpus was materialised from
        ``spec.dataset`` store only a structural fingerprint instead of
        re-embedding the corpus — :meth:`load` regenerates it from the spec
        (corpus generation is deterministic) and verifies the fingerprint.
        Streaming sessions driven exclusively from ``spec.stream.source``
        compact the same way: the checkpoint stores the stream position
        and a fingerprint, and :meth:`load` replays the source's first
        ``stream_position`` arrivals instead of embedding every entity.

        Args:
            path: Destination file; a ``.gz`` suffix (e.g. ``.json.gz``)
                gzip-compresses the document.
            compress: Force compression on or off regardless of the suffix.
        """
        self._require_built()
        if not hasattr(self._user, "state_dict"):
            raise CheckpointError(
                "cannot checkpoint a session with a custom user that lacks "
                "state_dict/load_state_dict"
            )
        payload = {
            "format": ckpt.CHECKPOINT_FORMAT,
            "version": ckpt.CHECKPOINT_VERSION,
            "mode": self.mode,
            "user_type": type(self._user).__name__,
            "spec": self._spec.to_dict(),
        }
        if self.mode == "batch":
            from repro.datasets.io import database_to_dict

            if self._database_from_spec:
                payload["database_fingerprint"] = ckpt.database_fingerprint(
                    self._process.database
                )
            else:
                payload["database"] = database_to_dict(self._process.database)
            payload["state"] = {
                "process": self._process.state_dict(),
                "validated": list(self._validated),
            }
        else:
            if (
                self._spec.stream.source is not None
                and not self._external_arrivals
            ):
                # Compact form: every entity came from the declared
                # replayable source, so store only the checker's mutable
                # state plus the stream position and a fingerprint — load
                # replays the first `stream_position` arrivals and
                # verifies the fingerprint.
                payload["stream_fingerprint"] = ckpt.stream_fingerprint(
                    self._checker
                )
                checker_state = self._checker.mutable_state_dict()
                stream_position = self._checker.arrivals
            else:
                checker_state = self._checker.state_dict()
                stream_position = None
            payload["state"] = {
                "checker": checker_state,
                "session_rng": rng_state(self._rng),
                "user": (
                    self._user.state_dict()
                    if hasattr(self._user, "state_dict")
                    else None
                ),
                "updates": [
                    ckpt.stream_update_to_dict(update) for update in self._updates
                ],
                "records": ckpt.records_to_dicts(self._records),
                "validated": list(self._validated),
                "since_validation": self._since_validation,
            }
            if stream_position is not None:
                payload["state"]["stream_position"] = stream_position
        ckpt.write_checkpoint(path, payload, compress=compress)

    @classmethod
    def load(
        cls,
        path,
        database: Optional[FactDatabase] = None,
        user: Optional[User] = None,
    ) -> "FactCheckSession":
        """Resume a session from a :meth:`save` checkpoint.

        The object graph is rebuilt from the stored spec, the saved state
        is overlaid (labels, probabilities, weights, Gibbs chain, RNG
        streams, trace), and the returned session is ``open`` — stepping,
        observing, or running it continues exactly where the saved session
        left off.

        Args:
            path: Checkpoint file written by :meth:`save`.
            database: Optional replacement corpus (must match the stored
                structure); by default the corpus embedded in the
                checkpoint is used.
            user: Optional custom user; defaults to rebuilding (and
                restoring) the spec's simulated user.
        """
        payload = ckpt.read_checkpoint(path)
        spec = SessionSpec.from_dict(payload["spec"])
        if spec.mode != payload.get("mode"):
            raise CheckpointError("checkpoint mode does not match its spec")
        saved_user_type = payload.get("user_type", "SimulatedUser")
        if user is not None:
            if type(user).__name__ != saved_user_type:
                raise CheckpointError(
                    f"checkpoint was saved with a {saved_user_type} user, "
                    f"got {type(user).__name__}"
                )
        elif saved_user_type != "SimulatedUser":
            raise CheckpointError(
                f"checkpoint was saved with a custom {saved_user_type} user; "
                f"pass user= to load()"
            )
        if spec.mode == "batch":
            from repro.datasets.io import database_from_dict

            regenerated = False
            if database is not None:
                corpus = database
            elif "database" in payload:
                corpus = database_from_dict(payload["database"])
            else:
                # Compact checkpoint: the corpus was not embedded because
                # the spec regenerates it deterministically.
                if spec.dataset is None:
                    raise CheckpointError(
                        f"{path} embeds no corpus and its spec has no "
                        f"dataset; pass database= to load()"
                    )
                corpus = spec.dataset.load()
                regenerated = True
            fingerprint = payload.get("database_fingerprint")
            if fingerprint is not None:
                ckpt.verify_fingerprint(corpus, fingerprint, path)
            session = cls(spec, database=corpus, user=user)
            session._build(resume=payload["state"])
            session._database_from_spec = regenerated
        else:
            session = cls(spec, user=user)
            session._build(resume=payload["state"])
            fingerprint = payload.get("stream_fingerprint")
            if fingerprint is not None:
                ckpt.verify_stream_fingerprint(
                    session._checker, fingerprint, path
                )
        session._status = "open"
        return session

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._status != "open":
            raise SessionError(
                f"session is {self._status}; call open() first"
                if self._status == "new"
                else "session is closed"
            )

    def _require_built(self) -> None:
        if self._status == "new":
            raise SessionError("session is new; call open() first")

    def _require_mode(self, mode: str, operation: str) -> None:
        if self.mode != mode:
            raise SessionError(
                f"{operation}() is only available in {mode} mode "
                f"(this session is {self.mode!r})"
            )
