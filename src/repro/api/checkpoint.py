"""Checkpoint files: persisting a session so it can resume bit-for-bit.

A checkpoint is a single JSON document containing the session's
:class:`~repro.api.specs.SessionSpec`, the corpus structure (batch mode) or
the streamed entities (streaming mode), and the full mutable run state —
database labels and probabilities, model weights, Gibbs-chain spins, every
RNG bit-stream position, the trace, and all auxiliary counters.  Restoring
rebuilds the object graph from the spec and overlays the saved state, so a
resumed session continues the *same* random stream and reproduces the
uninterrupted run exactly (asserted by ``tests/test_api_checkpoint.py``).

Python's ``json`` round-trips both ``float`` values (shortest-repr) and the
arbitrary-precision integers of the PCG64 RNG state losslessly, which is
what makes a textual checkpoint format viable for bit-for-bit resume.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.crf.weights import CrfWeights
from repro.errors import CheckpointError
from repro.streaming.process import StreamUpdate

#: Identifying header of every checkpoint file.
CHECKPOINT_FORMAT = "repro-session-checkpoint"

#: Version written into every checkpoint; bumped on breaking changes.
CHECKPOINT_VERSION = 1


def stream_update_to_dict(update: StreamUpdate) -> dict:
    """Render one :class:`StreamUpdate` as a JSON-compatible entry."""
    return {
        "arrival_index": update.arrival_index,
        "elapsed_seconds": update.elapsed_seconds,
        "step_size": update.step_size,
        "weights": update.weights.values.tolist(),
        "num_claims": update.num_claims,
        "num_documents": update.num_documents,
        "num_sources": update.num_sources,
    }


def stream_update_from_dict(entry: dict) -> StreamUpdate:
    """Inverse of :func:`stream_update_to_dict`."""
    return StreamUpdate(
        arrival_index=int(entry["arrival_index"]),
        elapsed_seconds=float(entry["elapsed_seconds"]),
        step_size=float(entry["step_size"]),
        weights=CrfWeights(np.asarray(entry["weights"], dtype=float)),
        num_claims=int(entry["num_claims"]),
        num_documents=int(entry["num_documents"]),
        num_sources=int(entry["num_sources"]),
    )


def write_checkpoint(path: Union[str, Path], payload: dict) -> None:
    """Write a checkpoint payload (already carrying format headers)."""
    path = Path(path)
    try:
        document = json.dumps(payload)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint is not JSON-serialisable: {exc}") from exc
    path.write_text(document, encoding="utf-8")


def read_checkpoint(path: Union[str, Path]) -> dict:
    """Read and validate a checkpoint written by :func:`write_checkpoint`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a repro session checkpoint")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}; "
            f"expected {CHECKPOINT_VERSION}"
        )
    return payload


def records_to_dicts(records: List) -> List[dict]:
    """Serialise a list of :class:`IterationRecord` objects."""
    return [record.to_dict() for record in records]


def records_from_dicts(entries: List[dict]) -> List:
    """Inverse of :func:`records_to_dicts`."""
    from repro.validation.session import IterationRecord

    return [IterationRecord.from_dict(entry) for entry in entries]
