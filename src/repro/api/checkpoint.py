"""Checkpoint files: persisting a session so it can resume bit-for-bit.

A checkpoint is a single JSON document containing the session's
:class:`~repro.api.specs.SessionSpec`, the corpus structure (batch mode) or
the streamed entities (streaming mode), and the full mutable run state —
database labels and probabilities, model weights, Gibbs-chain spins, every
RNG bit-stream position, the trace, and all auxiliary counters.  Restoring
rebuilds the object graph from the spec and overlays the saved state, so a
resumed session continues the *same* random stream and reproduces the
uninterrupted run exactly (asserted by ``tests/test_api_checkpoint.py``).

Python's ``json`` round-trips both ``float`` values (shortest-repr) and the
arbitrary-precision integers of the PCG64 RNG state losslessly, which is
what makes a textual checkpoint format viable for bit-for-bit resume.

Two compaction mechanisms keep checkpoints small for large corpora:

* paths ending in ``.gz`` (the service spool uses ``.json.gz``) are
  gzip-compressed on write and detected transparently on read;
* version-2 checkpoints of sessions whose corpus came from a
  :class:`~repro.api.specs.DatasetSpec` store only a structural
  fingerprint instead of re-embedding the full corpus — loading
  regenerates the corpus from the spec (generation is deterministic) and
  verifies the fingerprint.  Version-1 checkpoints (corpus embedded) load
  unchanged.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.crf.weights import CrfWeights
from repro.errors import CheckpointError
from repro.streaming.process import StreamUpdate

#: Identifying header of every checkpoint file.
CHECKPOINT_FORMAT = "repro-session-checkpoint"

#: Version written into every checkpoint; bumped on breaking changes.
CHECKPOINT_VERSION = 3

#: Versions :func:`read_checkpoint` accepts (v1 embedded the corpus
#: unconditionally; v2 may replace it with a dataset fingerprint; v3 may
#: additionally replace a streaming session's entity lists with a stream
#: fingerprint plus replay position).
SUPPORTED_CHECKPOINT_VERSIONS = (1, 2, 3)

#: gzip magic bytes — how compressed checkpoints are detected on read.
_GZIP_MAGIC = b"\x1f\x8b"


def stream_update_to_dict(update: StreamUpdate) -> dict:
    """Render one :class:`StreamUpdate` as a JSON-compatible entry."""
    return {
        "arrival_index": update.arrival_index,
        "elapsed_seconds": update.elapsed_seconds,
        "ingest_seconds": update.ingest_seconds,
        "update_seconds": update.update_seconds,
        "step_size": update.step_size,
        "weights": update.weights.values.tolist(),
        "num_claims": update.num_claims,
        "num_documents": update.num_documents,
        "num_sources": update.num_sources,
    }


def stream_update_from_dict(entry: dict) -> StreamUpdate:
    """Inverse of :func:`stream_update_to_dict`.

    Pre-v3 checkpoints carry no phase split; their phase fields default
    to zero while ``elapsed_seconds`` keeps the recorded total.
    """
    return StreamUpdate(
        arrival_index=int(entry["arrival_index"]),
        elapsed_seconds=float(entry["elapsed_seconds"]),
        ingest_seconds=float(entry.get("ingest_seconds", 0.0)),
        update_seconds=float(entry.get("update_seconds", 0.0)),
        step_size=float(entry["step_size"]),
        weights=CrfWeights(np.asarray(entry["weights"], dtype=float)),
        num_claims=int(entry["num_claims"]),
        num_documents=int(entry["num_documents"]),
        num_sources=int(entry["num_sources"]),
    )


def write_checkpoint(
    path: Union[str, Path], payload: dict, compress: Optional[bool] = None
) -> None:
    """Write a checkpoint payload (already carrying format headers).

    Args:
        path: Destination file.
        compress: gzip the JSON document.  Defaults to ``True`` when the
            path ends in ``.gz`` (e.g. ``session.json.gz``), else ``False``.
    """
    path = Path(path)
    if compress is None:
        compress = path.suffix == ".gz"
    try:
        document = json.dumps(payload)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"checkpoint is not JSON-serialisable: {exc}") from exc
    raw = document.encode("utf-8")
    if compress:
        raw = gzip.compress(raw)
    # Atomic replace: a crash mid-write must never leave a torn
    # checkpoint where a good one stood (the service spool rewrites these
    # files after every mutating request).
    staging = path.with_name(path.name + ".tmp")
    staging.write_bytes(raw)
    os.replace(staging, path)


def read_checkpoint(path: Union[str, Path]) -> dict:
    """Read and validate a checkpoint written by :func:`write_checkpoint`.

    Compression is detected from the file contents (gzip magic bytes), so
    ``.json`` and ``.json.gz`` checkpoints load through the same call.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    if raw.startswith(_GZIP_MAGIC):
        try:
            raw = gzip.decompress(raw)
        except OSError as exc:
            raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a repro session checkpoint")
    version = payload.get("version")
    if version not in SUPPORTED_CHECKPOINT_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}; "
            f"supported: {SUPPORTED_CHECKPOINT_VERSIONS}"
        )
    return payload


def database_fingerprint(database) -> dict:
    """Structural fingerprint stored in place of a regenerable corpus.

    Cheap to compute and verify, yet strong enough to catch a drifted
    :class:`~repro.api.specs.DatasetSpec` (changed seed/scale/profile or an
    edited corpus file): entity counts plus a content digest over the
    claim identifiers and their ground truths (generated claim ids are
    positional, so counts alone cannot distinguish two seeds at the same
    scale — the truth pattern can).
    """
    digest = hashlib.sha256()
    for claim in database.claims:
        digest.update(claim.claim_id.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(str(claim.truth).encode("utf-8"))
        digest.update(b"\x1e")
    return {
        "num_claims": database.num_claims,
        "num_documents": len(database.documents),
        "num_sources": len(database.sources),
        "claims_digest": digest.hexdigest()[:16],
    }


def verify_fingerprint(database, fingerprint: dict, path) -> None:
    """Raise :class:`CheckpointError` when a regenerated corpus mismatches."""
    actual = database_fingerprint(database)
    if actual != fingerprint:
        raise CheckpointError(
            f"corpus regenerated from the spec does not match the corpus "
            f"checkpointed at {path}: expected {fingerprint}, got {actual} "
            f"(was the dataset file or generator changed?)"
        )


def stream_fingerprint(checker) -> dict:
    """Structural fingerprint of the entities a checker has ingested.

    Version-3 checkpoints of streaming sessions driven by a replayable
    :class:`~repro.api.specs.StreamSourceSpec` store this fingerprint and
    the replay position instead of embedding every streamed entity.
    Loading replays the stream from the spec and verifies the fingerprint,
    mirroring the batch-mode :func:`database_fingerprint` compaction.
    """
    digest = hashlib.sha256()
    for source in checker._sources:
        digest.update(source.source_id.encode("utf-8"))
        digest.update(b"\x1e")
    digest.update(b"\x1d")
    for document in checker._documents:
        digest.update(document.document_id.encode("utf-8"))
        digest.update(b"\x1e")
    digest.update(b"\x1d")
    for claim in checker._claims:
        digest.update(claim.claim_id.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(str(claim.truth).encode("utf-8"))
        digest.update(b"\x1e")
    return {
        "num_claims": len(checker._claims),
        "num_documents": len(checker._documents),
        "num_sources": len(checker._sources),
        "entities_digest": digest.hexdigest()[:16],
    }


def verify_stream_fingerprint(checker, fingerprint: dict, path) -> None:
    """Raise :class:`CheckpointError` when a replayed stream mismatches."""
    actual = stream_fingerprint(checker)
    if actual != fingerprint:
        raise CheckpointError(
            f"stream replayed from the spec does not match the stream "
            f"checkpointed at {path}: expected {fingerprint}, got {actual} "
            f"(was the stream source or its dataset changed?)"
        )


def records_to_dicts(records: List) -> List[dict]:
    """Serialise a list of :class:`IterationRecord` objects."""
    return [record.to_dict() for record in records]


def records_from_dicts(entries: List[dict]) -> List:
    """Inverse of :func:`records_to_dicts`."""
    from repro.validation.session import IterationRecord

    return [IterationRecord.from_dict(entry) for entry in entries]
