"""Builders turning declarative specs into runtime objects.

The session façade (and the ``from_spec`` classmethods on the legacy
classes) construct every framework component through these helpers.  All
construction happens inside :func:`~repro._legacy.suppress_legacy_warnings`
so the deprecation nudge on the kwarg constructors fires only for direct
user code.
"""

from __future__ import annotations

from typing import Optional

from repro._legacy import suppress_legacy_warnings
from repro.data.database import FactDatabase
from repro.errors import SpecError
from repro.guidance.strategies import make_strategy
from repro.utils.rng import RandomState, ensure_rng
from repro.validation.oracle import SimulatedUser, User

from repro.api.specs import InferenceSpec, SessionSpec, UserSpec


def build_user(spec: UserSpec, seed: RandomState = None) -> SimulatedUser:
    """Simulated oracle user from a :class:`UserSpec`."""
    return SimulatedUser(
        error_probability=spec.error_probability,
        skip_probability=spec.skip_probability,
        seed=seed,
    )


def build_icrf(
    database: FactDatabase,
    spec: Optional[InferenceSpec] = None,
    seed: RandomState = None,
):
    """iCRF engine configured by an :class:`InferenceSpec`."""
    from repro.inference.icrf import ICrf

    spec = spec if spec is not None else InferenceSpec()
    with suppress_legacy_warnings():
        return ICrf(
            database,
            aggregation=spec.aggregation,
            coupling_enabled=spec.coupling_enabled,
            em_iterations=spec.em_iterations,
            em_tolerance=spec.em_tolerance,
            burn_in=spec.burn_in,
            num_samples=spec.num_samples,
            initial_bias=spec.initial_bias,
            mstep=spec.mstep,
            estep_mode=spec.estep_mode,
            engine=spec.engine_config(),
            seed=seed,
        )


def build_process(
    database: FactDatabase,
    spec: SessionSpec,
    user: Optional[User] = None,
    icrf=None,
    seed: RandomState = None,
):
    """Validation process (Alg. 1) assembled from a :class:`SessionSpec`.

    Args:
        database: The corpus to validate.
        spec: The session configuration.
        user: Validating user; built from ``spec.user`` when omitted (the
            caller is then responsible for seeding determinism).
        icrf: Inference engine; built from ``spec.inference`` when omitted.
        seed: Seed or generator for the process (strategy roulette, tie
            breaks, skip fallbacks) and — when built here — the iCRF chain.
    """
    from repro.validation.process import ValidationProcess
    from repro.validation.robustness import ConfirmationChecker

    rng = ensure_rng(seed)
    effort = spec.effort
    robustness = (
        ConfirmationChecker(interval=effort.confirmation_interval)
        if effort.confirmation_interval is not None
        else None
    )
    with suppress_legacy_warnings():
        if icrf is None:
            from repro.utils.rng import derive_rng

            icrf = build_icrf(database, spec.inference, seed=derive_rng(rng, 0))
        if user is None:
            user = build_user(spec.user)
        return ValidationProcess(
            database,
            strategy=make_strategy(spec.guidance.strategy),
            user=user,
            goal=effort.goal.build(),
            budget=effort.budget,
            icrf=icrf,
            gain_config=spec.guidance.gain,
            candidate_limit=spec.guidance.candidate_limit,
            batch_size=effort.batch_size,
            batch_utility_weight=effort.batch_utility_weight,
            robustness=robustness,
            termination=[entry.build() for entry in effort.termination],
            max_skip_attempts=effort.max_skip_attempts,
            deterministic_ties=spec.guidance.deterministic_ties,
            seed=rng,
        )


def build_checker(spec: SessionSpec, seed: RandomState = None):
    """Streaming fact checker (Alg. 2) assembled from a :class:`SessionSpec`."""
    import dataclasses

    from repro.inference.mstep import MStepConfig
    from repro.streaming.process import StreamingFactChecker
    from repro.streaming.schedule import RobbinsMonroSchedule

    stream = spec.stream
    inference = spec.inference
    online_mstep = dataclasses.replace(
        inference.mstep, max_iterations=stream.online_mstep_iterations
    )
    with suppress_legacy_warnings():
        return StreamingFactChecker(
            schedule=RobbinsMonroSchedule(
                beta=stream.schedule_beta, scale=stream.schedule_scale
            ),
            aggregation=inference.aggregation,
            coupling_enabled=inference.coupling_enabled,
            mstep=online_mstep,
            meanfield_steps=stream.meanfield_steps,
            initial_bias=inference.initial_bias,
            prior=stream.prior,
            engine=inference.engine_config(),
            incremental=stream.incremental,
            allow_pending_labels=stream.allow_pending_labels,
            seed=seed,
        )


def resolve_database(
    spec: SessionSpec, database: Optional[FactDatabase]
) -> FactDatabase:
    """The corpus a session runs on: explicit object or ``spec.dataset``."""
    if database is not None:
        return database
    if spec.dataset is None:
        raise SpecError(
            "no corpus: pass a FactDatabase to the session or set "
            "SessionSpec.dataset"
        )
    return spec.dataset.load()
