"""The interactive validation process (§5): Alg. 1, users, goals, traces."""

from repro.validation.goals import (
    EstimatedPrecisionGoal,
    NoGoal,
    TruePrecisionGoal,
    ValidationGoal,
)
from repro.validation.oracle import SimulatedUser, User
from repro.validation.process import RobustnessStats, ValidationProcess
from repro.validation.report import TraceSummary, format_summary, summarize_trace
from repro.validation.robustness import ConfirmationChecker, ConfirmationReport
from repro.validation.session import IterationRecord, ValidationTrace

__all__ = [
    "ConfirmationChecker",
    "ConfirmationReport",
    "EstimatedPrecisionGoal",
    "IterationRecord",
    "NoGoal",
    "RobustnessStats",
    "SimulatedUser",
    "TraceSummary",
    "TruePrecisionGoal",
    "User",
    "ValidationProcess",
    "ValidationTrace",
    "format_summary",
    "summarize_trace",
]
