"""Robustness against erroneous user input (§5.2).

The confirmation check exploits redundancy in the model: for every claim
``c`` validated so far, a grounding ``g_{i~c}`` is constructed from all
information *except* the validation of ``c`` (leave-one-out re-inference).
When ``g_{i~c}(c)`` disagrees with the stored user input, the input is
flagged as a potential mistake and re-elicited, which costs extra effort
(the "label+repair effort" axis of Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.crf.model import CrfModel
from repro.crf.partition import ComponentIndex
from repro.crf.potentials import sigmoid
from repro.data.database import FactDatabase
from repro.errors import ValidationProcessError


@dataclass
class ConfirmationReport:
    """Outcome of one confirmation sweep.

    Attributes:
        checked: Claims examined (all labelled claims).
        suspects: Claims whose leave-one-out grounding disagreed with the
            stored user input.
    """

    checked: List[int]
    suspects: List[int]


class ConfirmationChecker:
    """Leave-one-out confirmation check over validated claims (§5.2).

    Args:
        interval: Trigger the check after this many validations (the paper
            uses every 1% of total validations; the process computes the
            concrete interval from it).
        meanfield_steps: Fixed-point iterations of the leave-one-out
            re-inference.
        damping: Mean-field damping in [0, 1).
    """

    def __init__(
        self, interval: int = 1, meanfield_steps: int = 4, damping: float = 0.2
    ) -> None:
        if interval < 1:
            raise ValidationProcessError("interval must be at least 1")
        if meanfield_steps < 1:
            raise ValidationProcessError("meanfield_steps must be at least 1")
        if not 0.0 <= damping < 1.0:
            raise ValidationProcessError("damping must lie in [0, 1)")
        self.interval = interval
        self._meanfield_steps = meanfield_steps
        self._damping = damping

    def due(self, validations_since_last: int) -> bool:
        """Whether a sweep should run now."""
        return validations_since_last >= self.interval

    def sweep(
        self,
        model: CrfModel,
        components: ComponentIndex,
    ) -> ConfirmationReport:
        """Check every labelled claim against its leave-one-out grounding."""
        database = model.database
        labelled = [int(c) for c in database.labelled_indices]
        suspects: List[int] = []
        for claim_index in labelled:
            stored = database.label_of(claim_index)
            assert stored is not None
            reinferred = self._leave_one_out_value(model, components, claim_index)
            if reinferred != stored:
                suspects.append(claim_index)
        return ConfirmationReport(checked=labelled, suspects=suspects)

    def _leave_one_out_value(
        self,
        model: CrfModel,
        components: ComponentIndex,
        claim_index: int,
    ) -> int:
        """``g_{i~c}(c)``: re-infer the claim without its own label.

        "All information except the validation of c" (§5.2) includes the
        model parameters: the weights are re-fitted without the held-out
        label (a warm-started TRON refit converges in a couple of Newton
        steps), otherwise a mistaken label could defend itself through the
        weights it distorted.
        """
        from repro.inference.mstep import MStepConfig, run_m_step

        database = model.database
        snapshot = database.clone_state()
        saved_weights = model.weights.copy()
        try:
            database.unlabel(claim_index)
            run_m_step(
                model,
                np.asarray(database.probabilities),
                MStepConfig(max_iterations=5),
            )
            scope = components.component_of_claim(claim_index)
            marginals = self._mean_field(model, database, scope)
            return int(marginals[claim_index] >= 0.5)
        finally:
            database.restore_state(snapshot)
            model.set_weights(saved_weights)

    def _mean_field(
        self,
        model: CrfModel,
        database: FactDatabase,
        scope: np.ndarray,
    ) -> np.ndarray:
        """Damped mean-field re-inference restricted to ``scope``."""
        marginals = np.asarray(database.probabilities, dtype=float).copy()
        labelled = database.labels
        free = np.asarray(
            [int(c) for c in scope if int(c) not in labelled], dtype=np.intp
        )
        if free.size == 0:
            return marginals
        for _ in range(self._meanfield_steps):
            logits = model.marginal_logits(marginals)
            updated = sigmoid(logits[free])
            marginals[free] = (
                self._damping * marginals[free] + (1.0 - self._damping) * updated
            )
        return marginals
