"""Validation goals Δ (§2.2).

The validation process halts when its goal is satisfied or the effort
budget is exhausted.  Goals are predicates over the current state; the
paper's example goal — the precision of the grounding — is provided in two
forms: evaluated against ground truth (how the experiments of §8 mimic the
user), and estimated via k-fold cross validation over the labelled claims
(the deployable variant, §6.1 "precision improvement rate").
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.utils.checks import check_probability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.validation.process import ValidationProcess


class ValidationGoal(abc.ABC):
    """Predicate deciding whether the validation goal Δ is reached."""

    @abc.abstractmethod
    def satisfied(self, process: "ValidationProcess") -> bool:
        """Whether the process may stop because the goal is met."""

    def describe(self) -> str:
        """Human-readable description for traces."""
        return type(self).__name__


class NoGoal(ValidationGoal):
    """Never satisfied — the process runs until its budget or C^U empties."""

    def satisfied(self, process: "ValidationProcess") -> bool:
        return False

    def describe(self) -> str:
        return "none"


class TruePrecisionGoal(ValidationGoal):
    """Stop when the grounding's true precision reaches a threshold.

    Requires ground-truth labels on all claims; this is how §8 mimics the
    user and measures effort-to-precision.
    """

    def __init__(self, threshold: float) -> None:
        self.threshold = check_probability(threshold, "threshold")

    def satisfied(self, process: "ValidationProcess") -> bool:
        precision = process.current_precision()
        return precision is not None and precision >= self.threshold

    def describe(self) -> str:
        return f"true_precision>={self.threshold}"


class EstimatedPrecisionGoal(ValidationGoal):
    """Stop when the cross-validated precision estimate reaches a threshold.

    Uses the k-fold estimator of §6.1; requires no ground truth beyond the
    user's own labels, so it is usable in real deployments.
    """

    def __init__(self, threshold: float, folds: int = 5, min_labels: int = 10) -> None:
        self.threshold = check_probability(threshold, "threshold")
        if folds < 2:
            raise ValueError(f"folds must be at least 2, got {folds}")
        if min_labels < folds:
            raise ValueError("min_labels must be at least the number of folds")
        self.folds = folds
        self.min_labels = min_labels

    def satisfied(self, process: "ValidationProcess") -> bool:
        if process.database.num_labelled < self.min_labels:
            return False
        from repro.effort.crossval import estimate_precision

        estimate = estimate_precision(process, folds=self.folds)
        return estimate >= self.threshold

    def describe(self) -> str:
        return f"estimated_precision>={self.threshold} ({self.folds}-fold)"
