"""Human-readable summaries of validation runs.

:func:`summarize_trace` condenses a :class:`~repro.validation.session.ValidationTrace`
into the quantities a practitioner checks after a run — final precision,
effort, convergence indicators, strategy mix — and renders them as text.
Used by the CLI and handy in notebooks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.effort.termination import cng_series, urr_series
from repro.validation.session import ValidationTrace


@dataclass
class TraceSummary:
    """Aggregate view of one validation run.

    Attributes:
        iterations: Completed iterations.
        validations: Claims validated (excluding repairs).
        repairs: Labels re-elicited by the confirmation check.
        skips: Claims the user declined.
        effort: Validated claims as a fraction of |C|.
        initial_precision / final_precision: Grounding precision before
            and after (``None`` without ground truth).
        effort_to_90: Effort fraction at which precision first reached
            0.9, when it did.
        entropy_drop: Relative uncertainty reduction over the run.
        mean_response_seconds: Mean per-iteration response time.
        strategy_mix: How often each concrete strategy made the selection
            (interesting under the hybrid roulette).
        final_urr / final_cng: Last values of the convergence indicators.
        stop_reason: Why the run ended.
    """

    iterations: int
    validations: int
    repairs: int
    skips: int
    effort: float
    initial_precision: Optional[float]
    final_precision: Optional[float]
    effort_to_90: Optional[float]
    entropy_drop: float
    mean_response_seconds: float
    strategy_mix: Dict[str, int]
    final_urr: float
    final_cng: float
    stop_reason: str


def summarize_trace(trace: ValidationTrace) -> TraceSummary:
    """Build a :class:`TraceSummary` from a finished (or partial) trace."""
    records = trace.records
    precisions = trace.precisions()
    final_precision = None
    if records and not np.isnan(precisions[-1]):
        final_precision = float(precisions[-1])
    elif not records and trace.stop_reason != "unfinished":
        # A run that stopped before its first iteration (e.g. the goal was
        # already satisfied by the initial inference) ends where it began.
        final_precision = trace.initial_precision
    entropies = trace.entropies()
    if trace.initial_entropy > 0 and entropies.size:
        entropy_drop = float(
            (trace.initial_entropy - entropies[-1]) / trace.initial_entropy
        )
    else:
        entropy_drop = 0.0
    urr = urr_series(trace) if records else np.asarray([0.0])
    cng = cng_series(trace) if records else np.asarray([0.0])
    return TraceSummary(
        iterations=trace.iterations,
        validations=trace.total_validations(),
        repairs=sum(r.repairs for r in records),
        skips=sum(r.skipped for r in records),
        effort=trace.total_validations() / trace.num_claims,
        initial_precision=trace.initial_precision,
        final_precision=final_precision,
        effort_to_90=trace.effort_to_reach(0.9),
        entropy_drop=entropy_drop,
        mean_response_seconds=(
            float(trace.response_times().mean()) if records else 0.0
        ),
        strategy_mix=dict(Counter(r.strategy_used for r in records)),
        final_urr=float(urr[-1]) if urr.size else 0.0,
        final_cng=float(cng[-1]) if cng.size else 0.0,
        stop_reason=trace.stop_reason,
    )


def format_summary(summary: TraceSummary) -> str:
    """Render a summary as an aligned text block."""
    lines = [
        f"stop reason          {summary.stop_reason}",
        f"iterations           {summary.iterations}",
        f"validations          {summary.validations} "
        f"(+{summary.repairs} repairs, {summary.skips} skips)",
        f"effort               {summary.effort:.1%}",
    ]
    if summary.initial_precision is not None:
        lines.append(f"initial precision    {summary.initial_precision:.3f}")
    if summary.final_precision is not None:
        lines.append(f"final precision      {summary.final_precision:.3f}")
    if summary.effort_to_90 is not None:
        lines.append(f"effort to 0.9        {summary.effort_to_90:.1%}")
    lines.append(f"entropy drop         {summary.entropy_drop:.1%}")
    lines.append(
        f"mean response time   {summary.mean_response_seconds * 1000:.0f} ms"
    )
    if summary.strategy_mix:
        mix = ", ".join(
            f"{name}: {count}" for name, count in sorted(summary.strategy_mix.items())
        )
        lines.append(f"strategy mix         {mix}")
    lines.append(f"final URR / CNG      {summary.final_urr:.3f} / {summary.final_cng:.3f}")
    return "\n".join(lines)
