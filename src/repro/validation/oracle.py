"""Simulated users for the validation process (§8.1, §8.5).

The paper follows common practice and simulates user input from ground
truth (§8.1).  :class:`SimulatedUser` supports the two perturbations the
robustness experiments add:

* **mistakes** (§8.5, Table 1 / Fig. 7) — with probability ``p`` the
  correct input is flipped;
* **skipping** (§8.5, Fig. 8) — with probability ``p_m`` the user declines
  to validate the offered claim, and the process falls back to the
  next-best candidate.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.data.entities import Claim
from repro.errors import ValidationProcessError
from repro.utils.checks import check_probability
from repro.utils.rng import RandomState, ensure_rng


class User(abc.ABC):
    """Interface of a validating user (step 2 of the process, §2.3)."""

    @abc.abstractmethod
    def validate(self, claim: Claim) -> Optional[int]:
        """Return 1 (credible), 0 (non-credible), or ``None`` to skip."""


class SimulatedUser(User):
    """Ground-truth oracle with optional mistakes and skipping.

    Args:
        error_probability: Chance of flipping the correct answer.
        skip_probability: Chance of declining to validate a claim.
        seed: Seed or generator.
    """

    #: Not checkpointed (lint rule STATE001): the two probabilities are
    #: immutable configuration restored from the session spec; the RNG
    #: position and the usage counters are what ``state_dict`` carries.
    _STATE_EXCLUDED = ("_error_probability", "_skip_probability")

    def __init__(
        self,
        error_probability: float = 0.0,
        skip_probability: float = 0.0,
        seed: RandomState = None,
    ) -> None:
        self._error_probability = check_probability(
            error_probability, "error_probability"
        )
        self._skip_probability = check_probability(
            skip_probability, "skip_probability"
        )
        self._rng = ensure_rng(seed)
        self._validations = 0
        self._mistakes = 0
        self._skips = 0

    @property
    def validations(self) -> int:
        """Number of answers produced (excludes skips)."""
        return self._validations

    @property
    def mistakes(self) -> int:
        """Number of flipped (incorrect) answers produced."""
        return self._mistakes

    @property
    def skips(self) -> int:
        """Number of claims the user declined."""
        return self._skips

    def state_dict(self) -> dict:
        """Serialise counters and RNG position for session checkpoints."""
        from repro.utils.rng import rng_state

        return {
            "validations": self._validations,
            "mistakes": self._mistakes,
            "skips": self._skips,
            "rng": rng_state(self._rng),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot bit-for-bit."""
        from repro.utils.rng import set_rng_state

        self._validations = int(state["validations"])
        self._mistakes = int(state["mistakes"])
        self._skips = int(state["skips"])
        set_rng_state(self._rng, state["rng"])

    def validate(self, claim: Claim) -> Optional[int]:
        """Answer from ground truth, possibly skipped or flipped."""
        if claim.truth is None:
            raise ValidationProcessError(
                f"claim {claim.claim_id!r} has no ground truth to simulate from"
            )
        if self._skip_probability and self._rng.random() < self._skip_probability:
            self._skips += 1
            return None
        answer = 1 if claim.truth else 0
        self._validations += 1
        if self._error_probability and self._rng.random() < self._error_probability:
            self._mistakes += 1
            return 1 - answer
        return answer
