"""Session traces of the validation process (§2.2 validation sequences).

Every iteration of Alg. 1 appends an :class:`IterationRecord`;
:class:`ValidationTrace` aggregates the sequence and exposes the series the
experiments of §8 plot: precision vs. effort, entropy traces, response
times, error rates, and the convergence indicators of §6.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.grounding import Grounding, precision_improvement


@dataclass
class IterationRecord:
    """Everything observed during one iteration of Alg. 1.

    Attributes:
        iteration: 1-based iteration number i.
        claim_indices: Claims validated this iteration (singleton unless
            batching is active).
        user_values: User input per validated claim.
        strategy_used: Name of the selection strategy that produced the
            claims (``info`` / ``source`` under the hybrid roulette).
        error_rate: ε_i of Eq. 22 (averaged over the batch).
        hybrid_score: z_i of Eq. 23 computed *after* this iteration.
        unreliable_ratio: r_i of Alg. 1 line 17.
        entropy: H_C(Q_i) by the scalable estimator (Eq. 13).
        precision: True precision of g_i when ground truth is available.
        grounding_changes: |{c | g_i(c) ≠ g_{i-1}(c)}| (CNG signal, §6.1).
        predictions_matched: Per validated claim, whether g_{i-1} already
            agreed with the user input (PRE signal, §6.1).
        response_seconds: Wall-clock time of selection + inference.
        skipped: Claims the user declined before one was accepted (§8.5).
        repairs: Labels re-elicited by the confirmation check (§5.2).
        claim_ids: String identifiers of the validated claims, parallel to
            ``claim_indices``.  Indices address the snapshot the record was
            produced on; identifiers stay stable across streaming rebuilds,
            so the session API reports claims by id.
        effort_units: Total user interactions consumed this iteration
            (validations + repairs, as in Fig. 7's "label+repair effort").
    """

    iteration: int
    claim_indices: List[int]
    user_values: List[int]
    strategy_used: str
    error_rate: float
    hybrid_score: float
    unreliable_ratio: float
    entropy: float
    precision: Optional[float]
    grounding_changes: int
    predictions_matched: List[bool]
    response_seconds: float
    skipped: int = 0
    repairs: int = 0
    claim_ids: List[str] = field(default_factory=list)

    @property
    def effort_units(self) -> int:
        """User interactions consumed (validations plus repairs)."""
        return len(self.claim_indices) + self.repairs

    def to_dict(self) -> dict:
        """Render the record as a JSON-compatible dictionary."""
        return {
            "iteration": self.iteration,
            "claim_indices": [int(c) for c in self.claim_indices],
            "user_values": [int(v) for v in self.user_values],
            "strategy_used": self.strategy_used,
            "error_rate": float(self.error_rate),
            "hybrid_score": float(self.hybrid_score),
            "unreliable_ratio": float(self.unreliable_ratio),
            "entropy": float(self.entropy),
            "precision": None if self.precision is None else float(self.precision),
            "grounding_changes": int(self.grounding_changes),
            "predictions_matched": [bool(m) for m in self.predictions_matched],
            "response_seconds": float(self.response_seconds),
            "skipped": int(self.skipped),
            "repairs": int(self.repairs),
            "claim_ids": list(self.claim_ids),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IterationRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


@dataclass
class ValidationTrace:
    """Complete record of one validation run.

    Attributes:
        num_claims: |C| of the underlying database.
        initial_precision: P_0 — precision of g_0 before any user input.
        initial_entropy: H_C(Q_0).
        records: Per-iteration records, in order.
        final_grounding: The grounding returned by the process.
        stop_reason: Why the run ended (``goal`` / ``budget`` /
            ``exhausted`` / an early-termination criterion name).
    """

    num_claims: int
    initial_precision: Optional[float]
    initial_entropy: float
    records: List[IterationRecord] = field(default_factory=list)
    final_grounding: Optional[Grounding] = None
    stop_reason: str = "unfinished"

    def to_dict(self) -> dict:
        """Render the trace as a JSON-compatible dictionary."""
        return {
            "num_claims": int(self.num_claims),
            "initial_precision": (
                None
                if self.initial_precision is None
                else float(self.initial_precision)
            ),
            "initial_entropy": float(self.initial_entropy),
            "stop_reason": self.stop_reason,
            "final_grounding": (
                None
                if self.final_grounding is None
                else self.final_grounding.values.tolist()
            ),
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ValidationTrace":
        """Inverse of :meth:`to_dict`."""
        grounding = payload.get("final_grounding")
        return cls(
            num_claims=payload["num_claims"],
            initial_precision=payload.get("initial_precision"),
            initial_entropy=payload["initial_entropy"],
            records=[
                IterationRecord.from_dict(entry)
                for entry in payload.get("records", [])
            ],
            final_grounding=None if grounding is None else Grounding(grounding),
            stop_reason=payload.get("stop_reason", "unfinished"),
        )

    # ------------------------------------------------------------------
    # Series accessors used by the experiment drivers
    # ------------------------------------------------------------------

    @property
    def iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.records)

    def total_validations(self) -> int:
        """Claims validated across all iterations (excludes repairs)."""
        return sum(len(r.claim_indices) for r in self.records)

    def total_effort(self) -> int:
        """User interactions including repairs (Fig. 7's x-axis)."""
        return sum(r.effort_units for r in self.records)

    def efforts(self, include_repairs: bool = False) -> np.ndarray:
        """Cumulative user effort as a fraction of |C| per iteration."""
        per_iteration = [
            r.effort_units if include_repairs else len(r.claim_indices)
            for r in self.records
        ]
        return np.cumsum(per_iteration) / self.num_claims

    def precisions(self) -> np.ndarray:
        """True precision P_i per iteration (NaN when unavailable)."""
        return np.asarray(
            [r.precision if r.precision is not None else np.nan for r in self.records]
        )

    def precision_improvements(self) -> np.ndarray:
        """R_i = (P_i - P_0) / (1 - P_0) per iteration (§8.1)."""
        if self.initial_precision is None:
            return np.full(len(self.records), np.nan)
        values = []
        for record in self.records:
            if record.precision is None:
                values.append(np.nan)
                continue
            improvement = precision_improvement(
                record.precision, self.initial_precision
            )
            values.append(np.nan if improvement is None else improvement)
        return np.asarray(values)

    def entropies(self) -> np.ndarray:
        """H_C(Q_i) per iteration."""
        return np.asarray([r.entropy for r in self.records])

    def response_times(self) -> np.ndarray:
        """Per-iteration response time Δt (Fig. 2 / Fig. 3)."""
        return np.asarray([r.response_seconds for r in self.records])

    def grounding_change_counts(self) -> np.ndarray:
        """CNG signal per iteration (§6.1)."""
        return np.asarray([r.grounding_changes for r in self.records])

    def error_rates(self) -> np.ndarray:
        """ε_i per iteration (Eq. 22)."""
        return np.asarray([r.error_rate for r in self.records])

    def hybrid_scores(self) -> np.ndarray:
        """z_i per iteration (Eq. 23)."""
        return np.asarray([r.hybrid_score for r in self.records])

    def prediction_match_flags(self) -> List[bool]:
        """Flattened PRE signal: inference-vs-input agreement per claim."""
        flags: List[bool] = []
        for record in self.records:
            flags.extend(record.predictions_matched)
        return flags

    def validated_claims(self) -> List[int]:
        """All validated claim indices, in validation order.

        This is the *validation sequence* compared across offline and
        streaming runs in Table 2 (Kendall's τ_b).
        """
        sequence: List[int] = []
        for record in self.records:
            sequence.extend(record.claim_indices)
        return sequence

    def effort_to_reach(self, precision: float, include_repairs: bool = False) -> Optional[float]:
        """Smallest cumulative effort fraction at which P_i ≥ ``precision``.

        Returns ``None`` when the run never reached the target.
        """
        efforts = self.efforts(include_repairs=include_repairs)
        for idx, record in enumerate(self.records):
            if record.precision is not None and record.precision >= precision:
                return float(efforts[idx])
        return None
