"""The complete validation process — Algorithm 1 of the paper (§5.1).

:class:`ValidationProcess` wires together all framework pieces: per
iteration it (1) selects a claim — or a batch (§6.2) — using the configured
strategy, (2) elicits (simulated) user input with skip handling (§8.5),
(3) infers the implications with iCRF, and (4) instantiates a grounding;
it then updates the hybrid-strategy score z_i from the error rate and the
unreliable-source ratio (Eq. 22–23), optionally sweeps the confirmation
check of §5.2, and evaluates goal, budget, and the early-termination
criteria of §6.1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro._legacy import suppress_legacy_warnings, warn_legacy
from repro.crf.entropy import (
    approximate_entropy,
    source_trust_from_grounding,
    unreliable_source_ratio,
)
from repro.crf.partition import ComponentIndex
from repro.data.database import FactDatabase
from repro.data.grounding import Grounding
from repro.errors import ValidationProcessError
from repro.guidance.base import SelectionContext, SelectionStrategy
from repro.guidance.gain import GainConfig, GainEstimator
from repro.guidance.hybrid_score import error_rate as compute_error_rate
from repro.guidance.hybrid_score import hybrid_score
from repro.inference.icrf import ICrf
from repro.validation.goals import NoGoal, ValidationGoal
from repro.validation.oracle import User
from repro.validation.robustness import ConfirmationChecker
from repro.validation.session import IterationRecord, ValidationTrace
from repro.utils.rng import RandomState, derive_rng, ensure_rng


@dataclass
class RobustnessStats:
    """Bookkeeping of the confirmation check (§5.2, Table 1).

    Attributes:
        sweeps: Confirmation sweeps performed.
        flagged: Labels flagged as suspicious.
        true_detections: Flagged labels that were in fact wrong.
        false_flags: Flagged labels that were actually correct.
        repairs: Re-elicited labels (adds to user effort).
    """

    sweeps: int = 0
    flagged: int = 0
    true_detections: int = 0
    false_flags: int = 0
    repairs: int = 0
    flagged_claims: List[int] = field(default_factory=list)


class ValidationProcess:
    """Interactive fact-checking driver (Alg. 1).

    Args:
        database: The probabilistic fact database Q.
        strategy: Claim-selection strategy (step 1).
        user: The validating user (step 2); simulated in experiments.
        goal: Validation goal Δ; default: none (run to budget/exhaustion).
        budget: User-effort budget b (max validations); default |C|.
        icrf: Inference engine; constructed with defaults when omitted.
        gain_config: Configuration of information-gain evaluation.
        candidate_limit: Pool restriction for gain-based strategies.
        batch_size: Claims validated per iteration (k of §6.2); batches
            are chosen by the greedy submodular selector.
        batch_utility_weight: The w of Eq. 27 balancing individual benefit
            against redundancy.
        robustness: Confirmation checker (§5.2); ``None`` disables it.
        termination: Early-termination criteria (§6.1) consulted after
            every iteration.
        max_skip_attempts: How many next-best candidates to offer when the
            user keeps skipping before forcing the last one.
        deterministic_ties: Break selection-score ties by claim index
            rather than randomly (reproducible validation orders).
        engine: Hot-path backend selection forwarded to the default
            :class:`~repro.inference.icrf.ICrf` (see
            :mod:`repro.inference.engine`); ignored when an ``icrf``
            instance is supplied.
        seed: Seed or generator.
    """

    #: Not checkpointed (lint rule STATE001): strategy/goal/robustness
    #: objects and the scalar knobs are immutable configuration rebuilt
    #: from the session spec; ``_truth`` is simulation-only ground truth
    #: owned by the database.  Mutable progress — database, iCRF, RNG,
    #: gains, user counters, trace, termination state — is what
    #: ``state_dict`` carries.
    _STATE_EXCLUDED = (
        "strategy",
        "goal",
        "budget",
        "components",
        "candidate_limit",
        "batch_size",
        "batch_utility_weight",
        "robustness",
        "max_skip_attempts",
        "deterministic_ties",
        "_truth",
    )

    def __init__(
        self,
        database: FactDatabase,
        strategy: SelectionStrategy,
        user: User,
        goal: Optional[ValidationGoal] = None,
        budget: Optional[int] = None,
        icrf: Optional[ICrf] = None,
        gain_config: Optional[GainConfig] = None,
        candidate_limit: Optional[int] = None,
        batch_size: int = 1,
        batch_utility_weight: float = 1.0,
        robustness: Optional[ConfirmationChecker] = None,
        termination: Sequence = (),
        max_skip_attempts: int = 5,
        deterministic_ties: bool = False,
        engine=None,
        seed: RandomState = None,
    ) -> None:
        warn_legacy(
            "ValidationProcess(...) with keyword arguments",
            "repro.api.FactCheckSession with a SessionSpec",
        )
        if batch_size < 1:
            raise ValidationProcessError("batch_size must be at least 1")
        if budget is not None and budget < 1:
            raise ValidationProcessError("budget must be at least 1")
        rng = ensure_rng(seed)
        self.database = database
        self.strategy = strategy
        self.user = user
        self.goal = goal if goal is not None else NoGoal()
        self.budget = budget if budget is not None else database.num_claims
        with suppress_legacy_warnings():
            self.icrf = (
                icrf
                if icrf is not None
                else ICrf(database, engine=engine, seed=derive_rng(rng, 0))
            )
        self.components = ComponentIndex(database)
        self.gains = GainEstimator(
            self.icrf.model,
            components=self.components,
            config=gain_config,
            engine=self.icrf.engine,
            seed=derive_rng(rng, 1),
        )
        self.candidate_limit = candidate_limit
        self.batch_size = batch_size
        self.batch_utility_weight = batch_utility_weight
        self.robustness = robustness
        self.termination = list(termination)
        self.max_skip_attempts = max_skip_attempts
        self.deterministic_ties = deterministic_ties
        self._rng = derive_rng(rng, 2)

        self._truth: Optional[np.ndarray] = None
        try:
            self._truth = database.truth_vector()
        except Exception:
            self._truth = None

        self._trace: Optional[ValidationTrace] = None
        self._grounding: Optional[Grounding] = None
        self._hybrid_score = 0.0
        self._iteration = 0
        self._validations_since_check = 0
        self.robustness_stats = RobustnessStats()

    def close(self) -> None:
        """Release process-level resources held by gain evaluation.

        The estimator's pooled worker engines are the only OS-level
        resources the process owns directly; everything stays usable
        afterwards (pools rebuild lazily on the next parallel call).
        """
        self.gains.close()

    # ------------------------------------------------------------------
    # Declarative construction and checkpoint state
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, database, spec, user=None, icrf=None, seed=None):
        """Construct from a declarative :class:`repro.api.SessionSpec`.

        This is the non-deprecated constructor path; the preferred entry
        point is :class:`repro.api.FactCheckSession`, which adds lifecycle
        management and checkpointing on top.
        """
        from repro.api.build import build_process

        return build_process(database, spec, user=user, icrf=icrf, seed=seed)

    def state_dict(self) -> dict:
        """Serialise the complete mutable run state (JSON-compatible).

        Covers database labels and probabilities, model weights, the Gibbs
        chain, every RNG position, the trace, and the auxiliary counters —
        everything needed so :meth:`load_state_dict` on an identically
        configured process reproduces the uninterrupted run bit-for-bit.
        The structure of the database is *not* included; checkpoints store
        it separately (see :mod:`repro.api.checkpoint`).
        """
        from dataclasses import asdict

        from repro.utils.rng import rng_state

        user_state = None
        if hasattr(self.user, "state_dict"):
            user_state = self.user.state_dict()
        return {
            "database": {
                "probabilities": np.asarray(self.database.probabilities).tolist(),
                "labels": {
                    str(index): int(value)
                    for index, value in self.database.labels.items()
                },
            },
            "icrf": self.icrf.state_dict(),
            "rng": {
                "process": rng_state(self._rng),
                "gains": rng_state(self.gains._rng),
            },
            "user": user_state,
            "hybrid_score": self._hybrid_score,
            "iteration": self._iteration,
            "validations_since_check": self._validations_since_check,
            "robustness_stats": asdict(self.robustness_stats),
            "termination": [
                {key: value for key, value in criterion.__dict__.items()}
                for criterion in self.termination
            ],
            "grounding": (
                None if self._grounding is None else self._grounding.values.tolist()
            ),
            "trace": None if self._trace is None else self._trace.to_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this process.

        The process must have been constructed with the same configuration
        (same database structure, strategy, goal, termination criteria, and
        engine backend) — typically by rebuilding it from the same
        :class:`~repro.api.SessionSpec`.
        """
        from repro.data.database import FactDatabaseState
        from repro.utils.rng import set_rng_state

        self.database.restore_state(
            FactDatabaseState(
                probabilities=np.asarray(
                    state["database"]["probabilities"], dtype=float
                ),
                labels={
                    int(index): int(value)
                    for index, value in state["database"]["labels"].items()
                },
            )
        )
        self.icrf.load_state_dict(state["icrf"])
        set_rng_state(self._rng, state["rng"]["process"])
        set_rng_state(self.gains._rng, state["rng"]["gains"])
        if state.get("user") is not None and hasattr(self.user, "load_state_dict"):
            self.user.load_state_dict(state["user"])
        self._hybrid_score = float(state["hybrid_score"])
        self._iteration = int(state["iteration"])
        self._validations_since_check = int(state["validations_since_check"])
        self.robustness_stats = RobustnessStats(**state["robustness_stats"])
        for criterion, criterion_state in zip(
            self.termination, state["termination"]
        ):
            criterion.__dict__.update(criterion_state)
        grounding = state.get("grounding")
        self._grounding = None if grounding is None else Grounding(grounding)
        trace = state.get("trace")
        self._trace = None if trace is None else ValidationTrace.from_dict(trace)

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------

    @property
    def trace(self) -> ValidationTrace:
        """The session trace (initialises the process on first access)."""
        if self._trace is None:
            self.initialize()
        assert self._trace is not None
        return self._trace

    @property
    def grounding(self) -> Grounding:
        """The current grounding g_i."""
        if self._grounding is None:
            self.initialize()
        assert self._grounding is not None
        return self._grounding

    def current_precision(self) -> Optional[float]:
        """True precision of the current grounding, when truth is known."""
        if self._truth is None or self._grounding is None:
            return None
        return self._grounding.precision(self._truth)

    def current_entropy(self) -> float:
        """H_C(Q) by the scalable estimator (Eq. 13)."""
        return approximate_entropy(self.database.probabilities)

    # ------------------------------------------------------------------
    # Lines 1–4 of Alg. 1
    # ------------------------------------------------------------------

    def initialize(self) -> ValidationTrace:
        """Initial inference on the unlabelled database (Alg. 1 lines 1–4)."""
        if self._trace is not None:
            return self._trace
        result = self.icrf.infer()
        self._grounding = result.grounding
        self._hybrid_score = 0.0
        self._iteration = 0
        self._trace = ValidationTrace(
            num_claims=self.database.num_claims,
            initial_precision=self.current_precision(),
            initial_entropy=self.current_entropy(),
        )
        return self._trace

    # ------------------------------------------------------------------
    # One iteration (Alg. 1 lines 6–19)
    # ------------------------------------------------------------------

    def step(self) -> IterationRecord:
        """Execute one iteration of the validation loop."""
        if self._trace is None:
            self.initialize()
        assert self._trace is not None and self._grounding is not None
        if self.database.unlabelled_indices.size == 0:
            raise ValidationProcessError("all claims are already validated")

        self._iteration += 1
        started = time.perf_counter()

        # (1) Select claim(s) to validate.
        context = SelectionContext(
            database=self.database,
            gains=self.gains,
            rng=self._rng,
            hybrid_score=self._hybrid_score,
            iteration=self._iteration,
            candidate_limit=self.candidate_limit,
            deterministic_ties=self.deterministic_ties,
        )
        if self.batch_size == 1:
            selected = self._select_single(context)
        else:
            selected = self._select_batch(context)
        selection_seconds = time.perf_counter() - started

        # (2) Elicit user input, with skip handling.
        claims, values, skipped = self._elicit(selected, context)

        # Error rate ε_i against the previous model state (Eq. 22).
        previous_probabilities = np.asarray(self.database.probabilities)
        errors = [
            compute_error_rate(
                float(previous_probabilities[claim]), self._grounding[claim]
            )
            for claim in claims
        ]
        matched = [self._grounding[c] == v for c, v in zip(claims, values)]

        # (3) Incorporate input and infer (Alg. 1 lines 14–15).
        inference_started = time.perf_counter()
        for claim, value in zip(claims, values):
            self.database.label(claim, value)
        result = self.icrf.infer()
        inference_seconds = time.perf_counter() - inference_started

        # (4) Decide on the grounding (line 16).
        previous_grounding = self._grounding
        self._grounding = result.grounding
        grounding_changes = self._grounding.differences(previous_grounding)

        # Lines 17–18: unreliable-source ratio and hybrid score.
        trust = source_trust_from_grounding(self.database, self._grounding)
        unreliable = unreliable_source_ratio(trust)
        mean_error = float(np.mean(errors)) if errors else 0.0
        input_ratio = min(self.database.num_labelled / self.database.num_claims, 1.0)
        self._hybrid_score = hybrid_score(mean_error, unreliable, input_ratio)

        # §5.2 confirmation check.
        repairs = 0
        self._validations_since_check += len(claims)
        if self.robustness is not None and self.robustness.due(
            self._validations_since_check
        ):
            repairs = self._confirmation_sweep()
            self._validations_since_check = 0

        record = IterationRecord(
            iteration=self._iteration,
            claim_indices=list(claims),
            claim_ids=[self.database.claim_id(int(c)) for c in claims],
            user_values=list(values),
            strategy_used=getattr(self.strategy, "last_choice", "")
            or self.strategy.name,
            error_rate=mean_error,
            hybrid_score=self._hybrid_score,
            unreliable_ratio=unreliable,
            entropy=self.current_entropy(),
            precision=self.current_precision(),
            grounding_changes=grounding_changes,
            predictions_matched=matched,
            response_seconds=selection_seconds + inference_seconds,
            skipped=skipped,
            repairs=repairs,
        )
        self._trace.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Full run
    # ------------------------------------------------------------------

    def run(
        self,
        max_iterations: Optional[int] = None,
        on_iteration=None,
        after_iteration=None,
        cap_stop_reason: Optional[str] = "max_iterations",
    ) -> ValidationTrace:
        """Run Alg. 1 until goal, budget, exhaustion, or early termination.

        Args:
            max_iterations: Hard cap on total trace iterations (counting
                iterations restored from a checkpoint).
            on_iteration: Optional callable invoked with every new
                :class:`IterationRecord` — progress reporting hook used by
                the session façade and the CLI.
            after_iteration: Optional callable invoked with the record
                *after* the termination criteria have consumed it (and only
                when none fired).  This is the point at which the complete
                mutable state — criteria included — reflects the iteration,
                so it is where the session façade takes periodic
                checkpoints: resuming from one replays the remaining run
                bit-for-bit.
            cap_stop_reason: What hitting ``max_iterations`` records as
                the trace's stop reason.  Pass ``None`` to leave the trace
                unfinished instead — for callers (the session service)
                that drive the loop in bounded slices and must not stamp a
                final reason on a merely-paused run.
        """
        trace = self.initialize()
        while True:
            if self.goal.satisfied(self):
                trace.stop_reason = "goal"
                break
            if self.database.unlabelled_indices.size == 0:
                trace.stop_reason = "exhausted"
                break
            if self.database.num_labelled >= self.budget:
                trace.stop_reason = "budget"
                break
            if max_iterations is not None and trace.iterations >= max_iterations:
                if cap_stop_reason is not None:
                    trace.stop_reason = cap_stop_reason
                break
            record = self.step()
            if on_iteration is not None:
                on_iteration(record)
            reason = self._check_termination(record)
            if reason is not None:
                trace.stop_reason = reason
                break
            if after_iteration is not None:
                after_iteration(record)
        trace.final_grounding = self._grounding
        return trace

    def _check_termination(self, record: IterationRecord) -> Optional[str]:
        for criterion in self.termination:
            reason = criterion.update(self.trace, record, self)
            if reason is not None:
                return reason
        return None

    # ------------------------------------------------------------------
    # Selection helpers
    # ------------------------------------------------------------------

    def _select_single(self, context: SelectionContext) -> List[int]:
        return [self.strategy.select(context)]

    def _select_batch(self, context: SelectionContext) -> List[int]:
        from repro.effort.batching import greedy_topk_selection

        unlabelled = context.database.unlabelled_indices
        k = min(self.batch_size, unlabelled.size)
        selection = greedy_topk_selection(
            database=self.database,
            gains=self.gains,
            k=k,
            utility_weight=self.batch_utility_weight,
            candidate_limit=self.candidate_limit,
        )
        return selection.claims

    def _elicit(
        self, selected: List[int], context: SelectionContext
    ) -> tuple:
        """Obtain user input for the selection, handling skips (§8.5)."""
        claims: List[int] = []
        values: List[int] = []
        skipped = 0
        for claim_index in selected:
            value = self.user.validate(self.database.claims[claim_index])
            if value is not None:
                claims.append(claim_index)
                values.append(value)
                continue
            # The user skipped: offer the next-best candidates.
            skipped += 1
            replacement = self._next_best(claim_index, context)
            attempts = 0
            value = None
            while replacement is not None and attempts < self.max_skip_attempts:
                value = self.user.validate(self.database.claims[replacement])
                if value is not None:
                    break
                skipped += 1
                attempts += 1
                replacement = self._next_best(replacement, context, offset=attempts + 1)
            if replacement is None:
                replacement = claim_index
            if value is None:
                # Everyone was skipped: force input on the last candidate.
                truth = self.database.claims[replacement].truth
                value = 1 if truth else 0
            claims.append(replacement)
            values.append(value)
        return claims, values, skipped

    def _next_best(
        self, excluded: int, context: SelectionContext, offset: int = 1
    ) -> Optional[int]:
        """The next-ranked candidate differing from already chosen ones."""
        try:
            ranked = self.strategy.rank(context, count=offset + 1)
        except Exception:
            candidates = [
                int(c)
                for c in self.database.unlabelled_indices
                if int(c) != excluded
            ]
            if not candidates:
                return None
            return int(self._rng.choice(candidates))
        for candidate in ranked:
            if candidate != excluded:
                return int(candidate)
        return None

    # ------------------------------------------------------------------
    # Robustness (§5.2)
    # ------------------------------------------------------------------

    def _confirmation_sweep(self) -> int:
        """Run the confirmation check and repair suspicious labels."""
        assert self.robustness is not None
        report = self.robustness.sweep(self.icrf.model, self.components)
        stats = self.robustness_stats
        stats.sweeps += 1
        repairs = 0
        relabelled = False
        for claim_index in report.suspects:
            stats.flagged += 1
            stats.flagged_claims.append(claim_index)
            stored = self.database.label_of(claim_index)
            truth = self.database.claims[claim_index].truth
            if truth is not None and stored is not None and stored != int(truth):
                stats.true_detections += 1
            else:
                stats.false_flags += 1
            # Re-elicit input for the suspicious claim.
            value = self.user.validate(self.database.claims[claim_index])
            repairs += 1
            stats.repairs += 1
            if value is not None and value != stored:
                self.database.label(claim_index, value)
                relabelled = True
        if relabelled:
            result = self.icrf.infer(em_iterations=1)
            self._grounding = result.grounding
        return repairs
