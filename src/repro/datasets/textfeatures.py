"""Linguistic document features and forum-user source features (§8.1).

The paper assesses document language quality "using common linguistic
features such as stylistic indicators (e.g., use of modals, inferential
conjunction) and affective indicators (e.g., sentiments, thematic words)".
Without the original texts we simulate the *scores* of those indicators as
noisy functions of the latent language quality the generator assigns to
each document; the inference code consumes only the scores, so its code
paths are identical to the paper's.

Forum-user sources get "personal information (age, gender) and activity
logs (number of posts)".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng

#: Column names of the document-feature matrix.
DOCUMENT_FEATURE_NAMES: Tuple[str, ...] = (
    "stylistic_modality",
    "inferential_conjunctions",
    "objectivity",
    "sentiment_extremity",
    "thematic_coherence",
    "readability",
)

#: Column names of the forum-user source-feature matrix.
FORUM_USER_FEATURE_NAMES: Tuple[str, ...] = (
    "account_age",
    "gender_indicator",
    "log_post_count",
    "avg_thread_depth",
    "karma",
)


def document_features(
    quality: np.ndarray,
    seed: RandomState = None,
    noise_scale: float = 0.2,
) -> np.ndarray:
    """Simulate linguistic indicator scores for documents.

    Stylistic and objectivity indicators increase with latent quality;
    sentiment extremity decreases (low-quality, sensational documents carry
    extreme sentiment).  All columns carry independent Gaussian noise, so
    no single feature fully reveals the latent quality.

    Args:
        quality: Latent language quality in [0, 1] per document.
        seed: Seed or generator.
        noise_scale: Standard deviation of the indicator noise.

    Returns:
        Matrix of shape ``(num_documents, 6)`` following
        :data:`DOCUMENT_FEATURE_NAMES`.
    """
    rng = ensure_rng(seed)
    quality = np.asarray(quality, dtype=float)
    count = quality.size
    if count == 0:
        return np.zeros((0, len(DOCUMENT_FEATURE_NAMES)))

    def noisy(signal: np.ndarray) -> np.ndarray:
        return signal + rng.normal(0.0, noise_scale, size=count)

    stylistic = noisy(quality)
    inferential = noisy(0.8 * quality)
    objectivity = noisy(quality)
    sentiment_extremity = noisy(1.0 - quality)
    thematic = noisy(0.6 * quality + 0.2)
    readability = noisy(0.5 * quality + 0.25)
    features = np.column_stack(
        [stylistic, inferential, objectivity, sentiment_extremity, thematic,
         readability]
    )
    return _standardise_columns(features)


def forum_user_features(
    reliability: np.ndarray,
    post_counts: np.ndarray,
    seed: RandomState = None,
    noise_scale: float = 0.2,
) -> np.ndarray:
    """Simulate forum-user features: personal information and activity logs.

    ``account_age`` and ``karma`` correlate with reliability, the activity
    features derive from the actual number of generated posts, and the
    gender indicator is pure noise (present in the paper's feature list but
    uninformative by construction — a realistic distractor feature).

    Args:
        reliability: Latent reliability in [0, 1] per user.
        post_counts: Number of documents each user authored.
        seed: Seed or generator.
        noise_scale: Standard deviation of the feature noise.

    Returns:
        Matrix of shape ``(num_users, 5)`` following
        :data:`FORUM_USER_FEATURE_NAMES`.
    """
    rng = ensure_rng(seed)
    reliability = np.asarray(reliability, dtype=float)
    post_counts = np.asarray(post_counts, dtype=float)
    if reliability.shape != post_counts.shape:
        raise ValueError("reliability and post_counts must align")
    count = reliability.size
    if count == 0:
        return np.zeros((0, len(FORUM_USER_FEATURE_NAMES)))

    account_age = reliability + rng.normal(0.0, noise_scale, size=count)
    gender = rng.integers(0, 2, size=count).astype(float)
    log_posts = np.log1p(post_counts)
    thread_depth = 0.3 * reliability + rng.normal(0.0, noise_scale, size=count)
    karma = 0.8 * reliability + 0.1 * log_posts
    karma = karma + rng.normal(0.0, noise_scale, size=count)
    features = np.column_stack(
        [account_age, gender, log_posts, thread_depth, karma]
    )
    return _standardise_columns(features)


def _standardise_columns(matrix: np.ndarray) -> np.ndarray:
    """Scale every column to zero mean and unit variance."""
    centred = matrix - matrix.mean(axis=0, keepdims=True)
    std = centred.std(axis=0, keepdims=True)
    std[std <= 1e-12] = 1.0
    return centred / std
