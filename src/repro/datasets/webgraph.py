"""Web-graph centrality features for website sources (§8.1).

The paper derives source features for websites from "centrality scores such
as PageRank and HITS".  We regenerate that pipeline: a synthetic hyperlink
graph is grown over the sources with preferential attachment, biased so
that reliable sites accumulate more in-links (a well-supported empirical
assumption the paper's feature choice relies on), and the real PageRank and
HITS algorithms (via :mod:`networkx`) produce the feature values.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import RandomState, ensure_rng

#: Column names of the website source-feature matrix.
WEBSITE_FEATURE_NAMES: Tuple[str, ...] = (
    "pagerank",
    "hits_authority",
    "hits_hub",
    "in_degree",
    "domain_age",
)


def build_hyperlink_graph(
    reliability: np.ndarray,
    out_degree: int = 5,
    reliability_bias: float = 3.0,
    seed: RandomState = None,
) -> nx.DiGraph:
    """Grow a directed hyperlink graph over sources.

    Each node emits up to ``out_degree`` links; targets are sampled with
    probability proportional to ``1 + bias * reliability(target)`` times the
    target's current in-degree (preferential attachment).  The resulting
    degree distribution is heavy-tailed, like real web graphs.

    Args:
        reliability: Latent reliability in [0, 1] per source.
        out_degree: Links emitted per node.
        reliability_bias: How strongly links prefer reliable targets.
        seed: Seed or generator.

    Returns:
        A directed graph with nodes ``0 .. len(reliability) - 1``.
    """
    rng = ensure_rng(seed)
    reliability = np.asarray(reliability, dtype=float)
    count = reliability.size
    graph = nx.DiGraph()
    graph.add_nodes_from(range(count))
    if count < 2:
        return graph

    in_degree = np.ones(count)
    attractiveness = 1.0 + reliability_bias * reliability
    for node in range(count):
        weights = attractiveness * in_degree
        weights[node] = 0.0
        total = weights.sum()
        if total <= 0:
            continue
        k = min(out_degree, count - 1)
        targets = rng.choice(count, size=k, replace=False, p=weights / total)
        for target in targets:
            graph.add_edge(node, int(target))
            in_degree[target] += 1.0
    return graph


def website_features(
    reliability: np.ndarray,
    seed: RandomState = None,
    noise_scale: float = 0.15,
) -> np.ndarray:
    """Compute the website source-feature matrix.

    Columns follow :data:`WEBSITE_FEATURE_NAMES`: PageRank and HITS scores
    from a reliability-biased hyperlink graph (standardised), log in-degree,
    and a noisy "domain age" indicator correlated with reliability.

    Args:
        reliability: Latent reliability in [0, 1] per source.
        seed: Seed or generator.
        noise_scale: Standard deviation of the feature noise.

    Returns:
        Matrix of shape ``(num_sources, 5)``.
    """
    rng = ensure_rng(seed)
    reliability = np.asarray(reliability, dtype=float)
    count = reliability.size
    if count == 0:
        return np.zeros((0, len(WEBSITE_FEATURE_NAMES)))

    graph = build_hyperlink_graph(reliability, seed=rng)
    pagerank = _node_scores(nx.pagerank(graph, alpha=0.85), count)
    # networkx's ``hits`` seeds its eigensolver with a random start vector,
    # which makes same-seed corpora differ at the last ulp; a deterministic
    # power iteration computes the same fixed point reproducibly.
    hub_scores, authority_scores = _power_hits(graph, count)
    in_degree = np.array([graph.in_degree(node) for node in range(count)], dtype=float)

    domain_age = np.clip(
        reliability + rng.normal(0.0, noise_scale, size=count), 0.0, 1.5
    )
    features = np.column_stack(
        [
            _standardise(pagerank),
            _standardise(authority_scores),
            _standardise(hub_scores),
            _standardise(np.log1p(in_degree)),
            _standardise(domain_age),
        ]
    )
    return features


def _power_hits(
    graph: "nx.DiGraph",
    count: int,
    max_iter: int = 500,
    tolerance: float = 1e-12,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic HITS hub/authority scores by power iteration.

    Starts from the uniform vector and iterates the standard mutual
    update (``a ← Aᵀ h``, ``h ← A a``) with L1 normalisation, the same
    fixed point networkx converges to but without its randomised start.
    Returns ``(hubs, authorities)``, each summing to one.
    """
    if count == 0 or graph.number_of_edges() == 0:
        uniform = (
            np.full(count, 1.0 / count) if count else np.zeros(0)
        )
        return uniform.copy(), uniform.copy()
    edges = np.asarray(list(graph.edges), dtype=np.intp)
    tails, heads = edges[:, 0], edges[:, 1]
    hubs = np.full(count, 1.0 / count)
    for _ in range(max_iter):
        authorities = np.bincount(heads, weights=hubs[tails], minlength=count)
        authorities /= authorities.sum()
        new_hubs = np.bincount(tails, weights=authorities[heads], minlength=count)
        new_hubs /= new_hubs.sum()
        if np.abs(new_hubs - hubs).sum() < tolerance:
            hubs = new_hubs
            break
        hubs = new_hubs
    return hubs, authorities


def _node_scores(scores: dict, count: int) -> np.ndarray:
    """Dense array of per-node scores, zero for missing nodes."""
    dense = np.zeros(count)
    for node, score in scores.items():
        dense[node] = score
    return dense


def _standardise(values: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance scaling (constant columns become zero)."""
    std = values.std()
    if std <= 1e-12:
        return np.zeros_like(values)
    return (values - values.mean()) / std
