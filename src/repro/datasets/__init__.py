"""Dataset substrate: synthetic replicas of the paper's corpora (§8.1).

``load_dataset("snopes", seed=7, scale=0.02)`` returns a ready-to-use
:class:`~repro.data.database.FactDatabase` whose structure matches the
published Snopes statistics, shrunk by ``scale`` for fast experimentation.
"""

from repro.datasets.generator import generate_dataset
from repro.datasets.io import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.datasets.profiles import (
    HEALTHCARE,
    PROFILES,
    SNOPES,
    WIKIPEDIA,
    DatasetProfile,
    SourceKind,
    get_profile,
)
from repro.utils.rng import RandomState


def load_dataset(
    name: str, seed: RandomState = None, scale: float = 1.0, prior: float = 0.5
):
    """Generate the named synthetic corpus replica.

    Args:
        name: One of ``"wiki"``, ``"health"``, ``"snopes"``.
        seed: Seed or generator for reproducibility.
        scale: Entity-count multiplier (``1.0`` = published sizes).
        prior: Initial credibility probability for all claims.

    Returns:
        A :class:`~repro.data.database.FactDatabase`.
    """
    profile = get_profile(name)
    return generate_dataset(profile, seed=seed, scale=scale, prior=prior)


__all__ = [
    "DatasetProfile",
    "SourceKind",
    "HEALTHCARE",
    "PROFILES",
    "SNOPES",
    "WIKIPEDIA",
    "database_from_dict",
    "database_to_dict",
    "generate_dataset",
    "get_profile",
    "load_database",
    "load_dataset",
    "save_database",
]
