"""Serialisation of fact databases to and from JSON.

Round-tripping a generated corpus to disk lets experiments pin an exact
dataset and lets downstream users plug in their own corpora: any data that
can be expressed as sources, documents (with stance-bearing claim links)
and claims can be loaded into the framework through this format.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.data.database import FactDatabase
from repro.data.entities import Claim, ClaimLink, Document, Source
from repro.data.stance import Stance
from repro.errors import DatasetError

#: Format version written into every file; bumped on breaking changes.
FORMAT_VERSION = 1


def source_to_dict(source: Source) -> dict:
    """Render one source as a JSON-compatible entry."""
    return {
        "id": source.source_id,
        "features": source.features.tolist(),
        "metadata": dict(source.metadata),
    }


def document_to_dict(document: Document) -> dict:
    """Render one document (with its claim links) as a JSON entry."""
    return {
        "id": document.document_id,
        "source": document.source_id,
        "features": document.features.tolist(),
        "claims": [
            {"id": link.claim_id, "stance": link.stance.name}
            for link in document.claim_links
        ],
        "metadata": dict(document.metadata),
    }


def claim_to_dict(claim: Claim) -> dict:
    """Render one claim as a JSON entry."""
    return {
        "id": claim.claim_id,
        "text": claim.text,
        "truth": claim.truth,
        "metadata": dict(claim.metadata),
    }


def source_from_dict(entry: dict) -> Source:
    """Inverse of :func:`source_to_dict`."""
    return Source(
        source_id=entry["id"],
        features=entry["features"],
        metadata=entry.get("metadata", {}),
    )


def document_from_dict(entry: dict) -> Document:
    """Inverse of :func:`document_to_dict`."""
    return Document(
        document_id=entry["id"],
        source_id=entry["source"],
        features=entry["features"],
        claim_links=tuple(
            ClaimLink(claim_id=link["id"], stance=Stance[link["stance"]])
            for link in entry["claims"]
        ),
        metadata=entry.get("metadata", {}),
    )


def claim_from_dict(entry: dict) -> Claim:
    """Inverse of :func:`claim_to_dict`."""
    return Claim(
        claim_id=entry["id"],
        text=entry.get("text", ""),
        truth=entry.get("truth"),
        metadata=entry.get("metadata", {}),
    )


def database_to_dict(database: FactDatabase) -> dict:
    """Render a fact database as a JSON-compatible dictionary.

    Only the immutable structure is serialised; probabilities and labels
    are run-time state and are intentionally excluded (session checkpoints
    carry them separately, see :mod:`repro.api.checkpoint`).
    """
    return {
        "version": FORMAT_VERSION,
        "prior": database.prior,
        "sources": [source_to_dict(source) for source in database.sources],
        "documents": [document_to_dict(document) for document in database.documents],
        "claims": [claim_to_dict(claim) for claim in database.claims],
    }


def database_from_dict(payload: dict) -> FactDatabase:
    """Reconstruct a fact database from :func:`database_to_dict` output."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise DatasetError(
            f"unsupported fact-database format version {version!r}; "
            f"expected {FORMAT_VERSION}"
        )
    try:
        sources = [source_from_dict(entry) for entry in payload["sources"]]
        documents = [document_from_dict(entry) for entry in payload["documents"]]
        claims = [claim_from_dict(entry) for entry in payload["claims"]]
    except (KeyError, TypeError) as exc:
        raise DatasetError(f"malformed fact-database payload: {exc}") from exc
    return FactDatabase(
        sources=sources,
        documents=documents,
        claims=claims,
        prior=payload.get("prior", 0.5),
    )


def save_database(database: FactDatabase, path: Union[str, Path]) -> None:
    """Write a fact database to ``path`` as JSON."""
    path = Path(path)
    payload = database_to_dict(database)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_database(path: Union[str, Path]) -> FactDatabase:
    """Read a fact database previously written by :func:`save_database`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return database_from_dict(payload)
