"""Synthetic corpus generator replicating the paper's datasets (§8.1).

The generative process mirrors the assumptions the paper's CRF model
exploits (§3.1):

1. Every source has a latent *reliability* drawn from a two-component Beta
   mixture (trustworthy vs. untrustworthy, mixed by the profile's
   ``untrustworthy_ratio``).
2. Every claim has a hidden ground-truth credibility; the fraction of
   credible claims is the profile's ``credible_ratio``.
3. Sources author documents with a heavy-tailed activity distribution;
   claims are referenced with a heavy-tailed popularity distribution
   (a few "viral" claims appear in many documents).
4. Every claim has a *difficulty* d ∈ [0, 1] attenuating how well any
   source can judge it.  A source forms one *belief* per claim — it
   believes a true claim with probability ``0.5 + (reliability - 0.5)
   (1 - d)`` — and every document of that source repeats the belief
   (stances of one source are correlated, as real authors repeat
   themselves), with a small per-document stance-extraction noise.
   Trustworthy sources thus mostly support true claims and refute false
   ones — the mutual reinforcement the CRF model captures — while
   difficult claims stay ambiguous no matter how many documents mention
   them, which is what makes user input genuinely necessary.
5. Document language quality correlates with source reliability plus
   noise; feature vectors are produced by the extractors in
   :mod:`repro.datasets.webgraph` and :mod:`repro.datasets.textfeatures`.

The latent reliability and quality values are recorded in entity metadata
for diagnostics, but no algorithm reads them.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.data.database import FactDatabase
from repro.data.entities import Claim, ClaimLink, Document, Source
from repro.data.stance import Stance
from repro.datasets.profiles import DatasetProfile, SourceKind
from repro.datasets.textfeatures import document_features, forum_user_features
from repro.datasets.webgraph import website_features
from repro.errors import DatasetError
from repro.utils.rng import RandomState, derive_rng, ensure_rng


def generate_dataset(
    profile: DatasetProfile,
    seed: RandomState = None,
    scale: float = 1.0,
    prior: float = 0.5,
) -> FactDatabase:
    """Generate a synthetic fact database following ``profile``.

    Args:
        profile: Corpus shape (see :mod:`repro.datasets.profiles`).
        seed: Seed or generator for full reproducibility.
        scale: Multiplier on all entity counts; ``1.0`` reproduces the
            published corpus sizes, smaller values produce fast replicas
            with the same shape.
        prior: Initial credibility probability for all claims (the paper
            uses the maximum-entropy value 0.5).

    Returns:
        A :class:`FactDatabase` with ground-truth labels on every claim.
    """
    rng = ensure_rng(seed)
    if scale != 1.0:
        profile = profile.scaled(scale)

    reliability = _sample_reliability(profile, derive_rng(rng, 0))
    truths = _sample_truths(profile, derive_rng(rng, 1))
    docs_per_source = _sample_counts(
        total=profile.num_documents,
        bins=profile.num_sources,
        exponent=profile.source_activity_exponent,
        rng=derive_rng(rng, 2),
    )
    claim_popularity = _zipf_weights(
        profile.num_claims, profile.claim_popularity_exponent, derive_rng(rng, 3)
    )

    link_rng = derive_rng(rng, 4)
    quality_rng = derive_rng(rng, 5)
    doc_sources = np.repeat(np.arange(profile.num_sources), docs_per_source)
    link_rng.shuffle(doc_sources)

    quality = np.clip(
        0.15
        + 0.7 * reliability[doc_sources]
        + quality_rng.normal(0.0, 0.15, size=doc_sources.size),
        0.0,
        1.0,
    )

    difficulties = derive_rng(rng, 7).beta(
        profile.ambiguity_alpha, profile.ambiguity_beta,
        size=profile.num_claims,
    )
    claims = [
        Claim(
            claim_id=f"c{idx:05d}",
            text=f"claim-{profile.name}-{idx}",
            truth=bool(truths[idx]),
            metadata={"difficulty": float(difficulties[idx])},
        )
        for idx in range(profile.num_claims)
    ]

    documents = _generate_documents(
        profile=profile,
        doc_sources=doc_sources,
        reliability=reliability,
        truths=truths,
        difficulties=difficulties,
        claim_popularity=claim_popularity,
        quality=quality,
        rng=link_rng,
    )

    sources = _generate_sources(
        profile=profile,
        reliability=reliability,
        docs_per_source=docs_per_source,
        rng=derive_rng(rng, 6),
    )

    return FactDatabase(sources=sources, documents=documents, claims=claims,
                        prior=prior)


def _sample_reliability(
    profile: DatasetProfile, rng: np.random.Generator
) -> np.ndarray:
    """Draw per-source reliability from the two-component Beta mixture."""
    strength = profile.reliability_strength
    count = profile.num_sources
    untrustworthy = rng.random(count) < profile.untrustworthy_ratio
    low = rng.beta(0.25 * strength, 0.75 * strength, size=count)
    high = rng.beta(0.75 * strength, 0.25 * strength, size=count)
    return np.where(untrustworthy, low, high)


def _sample_truths(profile: DatasetProfile, rng: np.random.Generator) -> np.ndarray:
    """Ground-truth credibility with an exact credible fraction."""
    count = profile.num_claims
    num_credible = int(round(profile.credible_ratio * count))
    num_credible = min(max(num_credible, 1), count - 1)
    truths = np.zeros(count, dtype=np.int8)
    truths[:num_credible] = 1
    rng.shuffle(truths)
    return truths


def _sample_counts(
    total: int, bins: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Split ``total`` items over ``bins`` with a Zipf-like distribution."""
    weights = _zipf_weights(bins, exponent, rng)
    counts = rng.multinomial(total, weights)
    return counts


def _zipf_weights(
    count: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Normalised Zipf weights in random rank order."""
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def _generate_documents(
    profile: DatasetProfile,
    doc_sources: np.ndarray,
    reliability: np.ndarray,
    truths: np.ndarray,
    difficulties: np.ndarray,
    claim_popularity: np.ndarray,
    quality: np.ndarray,
    rng: np.random.Generator,
) -> List[Document]:
    """Create documents with stance-bearing claim links.

    Stances are driven by per-(source, claim) *beliefs*, decided once and
    repeated across all of the source's documents, plus per-document
    stance-extraction noise.
    """
    num_docs = doc_sources.size
    features = document_features(quality, seed=derive_rng(rng, 0))
    extra_links = rng.poisson(
        max(profile.claims_per_document_mean - 1.0, 0.0), size=num_docs
    )
    documents: List[Document] = []
    beliefs: dict = {}
    # Pre-draw the first (guaranteed) claim link of every document in one
    # vectorised call; extra links are drawn per document below.
    first_claims = rng.choice(
        profile.num_claims, size=num_docs, p=claim_popularity
    )
    for doc_idx in range(num_docs):
        source_idx = int(doc_sources[doc_idx])
        claim_ids = {int(first_claims[doc_idx])}
        extra = int(extra_links[doc_idx])
        if extra:
            budget = min(extra, profile.num_claims - 1)
            candidates = rng.choice(
                profile.num_claims, size=budget, p=claim_popularity
            )
            claim_ids.update(int(c) for c in candidates)
        links = []
        source_reliability = float(reliability[source_idx])
        for claim_idx in sorted(claim_ids):
            key = (source_idx, claim_idx)
            belief = beliefs.get(key)
            if belief is None:
                direction = 1.0 if truths[claim_idx] else -1.0
                support_probability = 0.5 + direction * (
                    (source_reliability - 0.5)
                    * (1.0 - float(difficulties[claim_idx]))
                )
                belief = bool(rng.random() < support_probability)
                beliefs[key] = belief
            supports = belief
            if rng.random() < profile.stance_noise:
                supports = bool(rng.random() < 0.5)
            stance = Stance.SUPPORT if supports else Stance.REFUTE
            links.append(ClaimLink(claim_id=f"c{claim_idx:05d}", stance=stance))
        documents.append(
            Document(
                document_id=f"d{doc_idx:06d}",
                source_id=f"s{source_idx:05d}",
                features=features[doc_idx],
                claim_links=tuple(links),
                metadata={"quality": float(quality[doc_idx])},
            )
        )
    return documents


def _generate_sources(
    profile: DatasetProfile,
    reliability: np.ndarray,
    docs_per_source: np.ndarray,
    rng: np.random.Generator,
) -> List[Source]:
    """Create sources with kind-appropriate feature vectors."""
    if profile.source_kind is SourceKind.WEBSITE:
        features = website_features(reliability, seed=rng)
    elif profile.source_kind is SourceKind.FORUM_USER:
        features = forum_user_features(reliability, docs_per_source, seed=rng)
    else:  # pragma: no cover - enum is exhaustive
        raise DatasetError(f"unsupported source kind {profile.source_kind!r}")
    return [
        Source(
            source_id=f"s{idx:05d}",
            features=features[idx],
            metadata={"reliability": float(reliability[idx])},
        )
        for idx in range(profile.num_sources)
    ]
