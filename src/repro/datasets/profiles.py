"""Published statistics of the paper's evaluation corpora (§8.1).

The original corpora (Wikipedia hoaxes, healthboards.com drug side-effects,
Snopes) were distributed via MPI resource archives that are not available
offline.  We therefore regenerate *synthetic replicas* whose structure
matches the published statistics.  A :class:`DatasetProfile` records those
statistics plus the generative knobs (source-reliability mixture, claim
popularity skew, documents per claim) used by
:mod:`repro.datasets.generator`.

``scale`` in the generator shrinks all entity counts proportionally so unit
tests and benchmarks stay fast; ``scale=1.0`` reproduces the full published
sizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DatasetError


class SourceKind(enum.Enum):
    """What a source is, which decides its feature set (§8.1).

    Websites get centrality features (PageRank, HITS); forum authors get
    personal/activity features (age, gender, post counts).
    """

    WEBSITE = "website"
    FORUM_USER = "forum_user"


@dataclass(frozen=True)
class DatasetProfile:
    """Shape parameters of one evaluation corpus.

    Attributes:
        name: Short dataset key used throughout the experiments
            (``"wiki"``, ``"health"``, ``"snopes"``).
        num_sources / num_documents / num_claims: Published entity counts.
        credible_ratio: Fraction of claims whose ground truth is *credible*.
        untrustworthy_ratio: Fraction of sources drawn from the unreliable
            mixture component.
        source_kind: Which feature extractor applies to sources.
        claims_per_document_mean: Average number of claim links per document
            ("each often ... involving a few claims", §2.1).
        claim_popularity_exponent: Zipf exponent of the claim-popularity
            distribution (some claims are referenced by many documents).
        source_activity_exponent: Zipf exponent of documents-per-source.
        reliability_strength: Beta concentration of the reliability mixture;
            higher values separate trustworthy and untrustworthy sources
            more sharply.
        ambiguity_alpha / ambiguity_beta: Beta parameters of the per-claim
            *difficulty*.  A claim with difficulty d attenuates every
            source's discriminative power by (1 - d): at d = 1 even
            perfectly reliable sources take a coin-flip stance.  This
            models the paper's motivating observation that some facts
            "cannot easily be inferred" from Web evidence and caps the
            precision automated inference can reach without user input.
        stance_noise: Probability that a document's stance is random —
            extraction noise of the claim-document linking pipeline.
    """

    name: str
    num_sources: int
    num_documents: int
    num_claims: int
    credible_ratio: float
    untrustworthy_ratio: float
    source_kind: SourceKind
    claims_per_document_mean: float = 1.6
    claim_popularity_exponent: float = 1.1
    source_activity_exponent: float = 1.3
    reliability_strength: float = 6.0
    ambiguity_alpha: float = 0.6
    ambiguity_beta: float = 1.4
    stance_noise: float = 0.10

    def __post_init__(self) -> None:
        if min(self.num_sources, self.num_documents, self.num_claims) <= 0:
            raise DatasetError("entity counts must be positive")
        if not 0.0 < self.credible_ratio < 1.0:
            raise DatasetError(
                f"credible_ratio must be in (0, 1), got {self.credible_ratio}"
            )
        if not 0.0 <= self.untrustworthy_ratio < 1.0:
            raise DatasetError(
                f"untrustworthy_ratio must be in [0, 1), got "
                f"{self.untrustworthy_ratio}"
            )
        if self.claims_per_document_mean < 1.0:
            raise DatasetError("documents must reference at least one claim")

    def scaled(self, scale: float) -> "DatasetProfile":
        """Return a copy with entity counts multiplied by ``scale``.

        Counts are floored at small minimums that keep the generative
        process well-defined (at least 4 claims, 6 documents, 3 sources).
        """
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale!r}")
        return DatasetProfile(
            name=self.name,
            num_sources=max(3, round(self.num_sources * scale)),
            num_documents=max(6, round(self.num_documents * scale)),
            num_claims=max(4, round(self.num_claims * scale)),
            credible_ratio=self.credible_ratio,
            untrustworthy_ratio=self.untrustworthy_ratio,
            source_kind=self.source_kind,
            claims_per_document_mean=self.claims_per_document_mean,
            claim_popularity_exponent=self.claim_popularity_exponent,
            source_activity_exponent=self.source_activity_exponent,
            reliability_strength=self.reliability_strength,
            ambiguity_alpha=self.ambiguity_alpha,
            ambiguity_beta=self.ambiguity_beta,
            stance_noise=self.stance_noise,
        )


#: Wikipedia hoaxes and fictitious people (§8.1): 1955 sources, 3228
#: documents, 157 labelled claims.  Hoax-heavy, so fewer than half of the
#: claims are credible.
WIKIPEDIA = DatasetProfile(
    name="wiki",
    num_sources=1955,
    num_documents=3228,
    num_claims=157,
    credible_ratio=0.40,
    untrustworthy_ratio=0.30,
    source_kind=SourceKind.WEBSITE,
)

#: Healthcare forum (healthboards.com, §8.1): 11206 users, 48083 documents,
#: 529 expert-labelled claims about drug side effects.
HEALTHCARE = DatasetProfile(
    name="health",
    num_sources=11206,
    num_documents=48083,
    num_claims=529,
    credible_ratio=0.55,
    untrustworthy_ratio=0.35,
    source_kind=SourceKind.FORUM_USER,
)

#: Snopes (§8.1): 23260 sources, 80421 documents, 4856 labelled claims.
#: Snopes debunks rumours, so most catalogued claims are not credible.
SNOPES = DatasetProfile(
    name="snopes",
    num_sources=23260,
    num_documents=80421,
    num_claims=4856,
    credible_ratio=0.35,
    untrustworthy_ratio=0.40,
    source_kind=SourceKind.WEBSITE,
)

PROFILES = {profile.name: profile for profile in (WIKIPEDIA, HEALTHCARE, SNOPES)}


def get_profile(name: str) -> DatasetProfile:
    """Look up a built-in profile by dataset key."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None
