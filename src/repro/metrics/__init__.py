"""Evaluation measures (§8.1): effort, precision, correlations."""

from repro.data.grounding import precision_improvement
from repro.metrics.calibration import (
    ReliabilityBin,
    brier_score,
    correct_value_probabilities,
    expected_calibration_error,
    reliability_curve,
)
from repro.metrics.correlation import (
    kendall_tau_b,
    pearson_correlation,
    sequence_rank_correlation,
)


def user_effort(num_validated: int, num_claims: int) -> float:
    """E = |C^L| / |C| — the fraction of claims validated (§8.1)."""
    if num_claims <= 0:
        raise ValueError(f"num_claims must be positive, got {num_claims}")
    if num_validated < 0:
        raise ValueError(f"num_validated must be non-negative, got {num_validated}")
    return num_validated / num_claims


__all__ = [
    "ReliabilityBin",
    "brier_score",
    "correct_value_probabilities",
    "expected_calibration_error",
    "kendall_tau_b",
    "pearson_correlation",
    "precision_improvement",
    "reliability_curve",
    "sequence_rank_correlation",
    "user_effort",
]
