"""Calibration diagnostics of credibility probabilities (§8.3).

Fig. 4 of the paper argues that the model's probabilities track the truth
better as user input accumulates.  This module provides the standard
quantitative companions to that histogram:

* :func:`reliability_curve` — predicted probability vs. empirical
  credible fraction per bin;
* :func:`brier_score` — mean squared error of the probabilities;
* :func:`expected_calibration_error` — bin-weighted |confidence −
  accuracy| gap;
* :func:`correct_value_probabilities` — the exact quantity Fig. 4 bins:
  ``P(c = 1)`` for true claims and ``P(c = 0)`` for false ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass
class ReliabilityBin:
    """One bin of a reliability curve.

    Attributes:
        lower / upper: Probability bin edges (lower exclusive except for
            the first bin).
        count: Number of claims whose probability falls in the bin.
        mean_predicted: Mean predicted credibility in the bin.
        empirical: Fraction of those claims that are actually credible.
    """

    lower: float
    upper: float
    count: int
    mean_predicted: float
    empirical: float


def _validate(probabilities, truth):
    probabilities = np.asarray(probabilities, dtype=float)
    truth = np.asarray(truth)
    if probabilities.shape != truth.shape:
        raise ValueError(
            f"probabilities and truth must align, got {probabilities.shape} "
            f"and {truth.shape}"
        )
    if probabilities.size == 0:
        raise ValueError("need at least one claim")
    if np.any((probabilities < 0) | (probabilities > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    if not np.all(np.isin(truth, (0, 1))):
        raise ValueError("truth must be 0/1")
    return probabilities, truth.astype(float)


def reliability_curve(
    probabilities, truth, num_bins: int = 10
) -> List[ReliabilityBin]:
    """Bin predictions and compare them to empirical credible fractions."""
    if num_bins < 1:
        raise ValueError(f"num_bins must be positive, got {num_bins}")
    probabilities, truth = _validate(probabilities, truth)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins: List[ReliabilityBin] = []
    for index in range(num_bins):
        lower, upper = edges[index], edges[index + 1]
        if index == 0:
            mask = (probabilities >= lower) & (probabilities <= upper)
        else:
            mask = (probabilities > lower) & (probabilities <= upper)
        count = int(mask.sum())
        bins.append(
            ReliabilityBin(
                lower=float(lower),
                upper=float(upper),
                count=count,
                mean_predicted=float(probabilities[mask].mean()) if count else 0.0,
                empirical=float(truth[mask].mean()) if count else 0.0,
            )
        )
    return bins


def brier_score(probabilities, truth) -> float:
    """Mean squared error of the credibility probabilities, in [0, 1]."""
    probabilities, truth = _validate(probabilities, truth)
    return float(np.mean((probabilities - truth) ** 2))


def expected_calibration_error(
    probabilities, truth, num_bins: int = 10
) -> float:
    """ECE: bin-count-weighted |mean confidence − empirical fraction|."""
    probabilities, truth = _validate(probabilities, truth)
    bins = reliability_curve(probabilities, truth, num_bins)
    total = probabilities.size
    return float(
        sum(
            b.count / total * abs(b.mean_predicted - b.empirical)
            for b in bins
            if b.count
        )
    )


def correct_value_probabilities(probabilities, truth) -> np.ndarray:
    """The Fig. 4 quantity: probability assigned to each claim's truth."""
    probabilities, truth = _validate(probabilities, truth)
    return np.where(truth == 1, probabilities, 1.0 - probabilities)
