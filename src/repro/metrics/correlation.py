"""Correlation statistics used by the evaluation (§8.4, §8.8).

* :func:`pearson_correlation` — Fig. 5 reports Pearson's coefficient
  between uncertainty and precision (≈ −0.85 in the paper).
* :func:`kendall_tau_b` — Table 2 compares validation sequences between
  the offline and streaming settings with Kendall's τ_b rank correlation,
  which handles ties (hence the *b* variant).  Implemented from scratch
  with the standard tie-corrected formula.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson's product-moment correlation coefficient.

    Returns 0.0 when either input is constant (undefined correlation).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"inputs must align, got {x.shape} and {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two observations")
    dx = x - x.mean()
    dy = y - y.mean()
    # Multiply norms (not squared norms) so near-subnormal inputs do not
    # underflow the denominator to zero.
    denominator = np.linalg.norm(dx) * np.linalg.norm(dy)
    if denominator == 0:
        return 0.0
    return float(np.clip((dx @ dy) / denominator, -1.0, 1.0))


def kendall_tau_b(x: Sequence[float], y: Sequence[float]) -> float:
    """Kendall's τ_b rank correlation with tie correction.

    ``τ_b = (P - Q) / sqrt((n0 - n1)(n0 - n2))`` where P/Q count
    concordant/discordant pairs, ``n0 = n(n-1)/2`` and ``n1``/``n2`` count
    tied pairs within x and y respectively.  Ranges from −1 (reversed
    order) to 1 (identical order); 0 when either input is fully tied.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"inputs must align, got {x.shape} and {y.shape}")
    n = x.size
    if n < 2:
        raise ValueError("need at least two observations")

    concordant = 0
    discordant = 0
    ties_x = 0
    ties_y = 0
    for i in range(n - 1):
        dx = x[i + 1 :] - x[i]
        dy = y[i + 1 :] - y[i]
        product = np.sign(dx) * np.sign(dy)
        concordant += int(np.count_nonzero(product > 0))
        discordant += int(np.count_nonzero(product < 0))
        ties_x += int(np.count_nonzero(dx == 0))
        ties_y += int(np.count_nonzero(dy == 0))

    n0 = n * (n - 1) / 2
    denominator = np.sqrt((n0 - ties_x) * (n0 - ties_y))
    if denominator == 0:
        return 0.0
    return float((concordant - discordant) / denominator)


def sequence_rank_correlation(
    sequence_a: Sequence[int], sequence_b: Sequence[int]
) -> float:
    """τ_b between two validation sequences over a shared item set.

    Items are ranked by their position in each sequence; items appearing
    in only one sequence are ranked after all present items (tied among
    themselves), mirroring "not yet validated".
    """
    items = sorted(set(sequence_a) | set(sequence_b))
    if len(items) < 2:
        raise ValueError("need at least two distinct items")
    pos_a = {item: rank for rank, item in enumerate(sequence_a)}
    pos_b = {item: rank for rank, item in enumerate(sequence_b)}
    tail_a = len(sequence_a)
    tail_b = len(sequence_b)
    ranks_a = [pos_a.get(item, tail_a) for item in items]
    ranks_b = [pos_b.get(item, tail_b) for item in items]
    return kendall_tau_b(ranks_a, ranks_b)
