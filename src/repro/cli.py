"""Command-line interface: ``python -m repro <command>``.

Three commands cover the common workflows:

* ``experiment`` — run one of the paper's experiment drivers and print
  its table (``python -m repro experiment fig6 --runs 2``).
* ``validate`` — run the interactive validation process on a synthetic
  corpus replica and print the per-iteration trace
  (``python -m repro validate --dataset snopes --strategy hybrid``).
* ``generate`` — generate a corpus replica and write it to JSON
  (``python -m repro generate --dataset wiki --out wiki.json``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.datasets import PROFILES, load_dataset, save_database
from repro.experiments import EXPERIMENTS, ExperimentConfig
from repro.guidance import STRATEGIES, make_strategy
from repro.validation import SimulatedUser, TruePrecisionGoal, ValidationProcess


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'User Guidance for Efficient Fact "
        "Checking' (PVLDB 2019)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiment = commands.add_parser(
        "experiment", help="run one experiment driver and print its table"
    )
    experiment.add_argument(
        "name", choices=sorted(EXPERIMENTS), help="paper artifact to regenerate"
    )
    experiment.add_argument("--seed", type=int, default=7)
    experiment.add_argument("--runs", type=int, default=2)
    experiment.add_argument(
        "--scale-factor",
        type=float,
        default=1.0,
        help="multiplier on the default corpus scales",
    )
    experiment.add_argument(
        "--datasets",
        nargs="+",
        choices=sorted(PROFILES),
        default=None,
        help="restrict to these corpora",
    )

    validate = commands.add_parser(
        "validate", help="run guided validation on a synthetic corpus"
    )
    validate.add_argument("--dataset", choices=sorted(PROFILES), default="snopes")
    validate.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="hybrid"
    )
    validate.add_argument("--seed", type=int, default=7)
    validate.add_argument("--scale", type=float, default=0.01)
    validate.add_argument(
        "--goal", type=float, default=0.9, help="precision goal in (0, 1]"
    )
    validate.add_argument(
        "--budget", type=int, default=None, help="maximum validations"
    )
    validate.add_argument(
        "--quiet", action="store_true", help="print only the final summary"
    )

    generate = commands.add_parser(
        "generate", help="generate a corpus replica and write JSON"
    )
    generate.add_argument("--dataset", choices=sorted(PROFILES), default="wiki")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--scale", type=float, default=0.1)
    generate.add_argument("--out", required=True, help="output JSON path")

    return parser


def run_experiment(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        seed=args.seed,
        runs=args.runs,
        scale_factor=args.scale_factor,
        datasets=tuple(args.datasets) if args.datasets else ExperimentConfig().datasets,
    )
    result = EXPERIMENTS[args.name].run(config)
    print(result.format_table())
    return 0


def run_validate(args: argparse.Namespace) -> int:
    database = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    process = ValidationProcess(
        database,
        strategy=make_strategy(args.strategy),
        user=SimulatedUser(seed=args.seed),
        goal=TruePrecisionGoal(args.goal),
        budget=args.budget,
        candidate_limit=20,
        seed=args.seed,
    )
    trace = process.initialize()
    if not args.quiet:
        print(f"corpus: {database!r}")
        print(
            f"initial precision {trace.initial_precision:.3f}, "
            f"entropy {trace.initial_entropy:.2f}"
        )
    trace = process.run()
    if not args.quiet:
        for record in trace.records:
            claim_id = database.claim_id(record.claim_indices[0])
            print(
                f"iter {record.iteration:>3}: {claim_id} <- "
                f"{record.user_values[0]} precision={record.precision:.3f} "
                f"dt={record.response_seconds * 1000:.0f}ms"
            )
    from repro.validation import format_summary, summarize_trace

    print(format_summary(summarize_trace(trace)))
    return 0


def run_generate(args: argparse.Namespace) -> int:
    database = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    save_database(database, args.out)
    print(f"wrote {database!r} to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "experiment": run_experiment,
        "validate": run_validate,
        "generate": run_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
