"""Command-line interface: ``python -m repro <command>``.

Five commands cover the common workflows:

* ``experiment`` — run one of the paper's experiment drivers and print
  its table (``python -m repro experiment fig6 --runs 2``).
* ``validate`` — run a guided fact-checking session on a synthetic corpus
  replica and print the per-iteration trace
  (``python -m repro validate --dataset snopes --strategy hybrid``).
  Sessions are declarative: ``--save-spec`` writes the resolved
  :class:`~repro.api.SessionSpec` as JSON, ``--spec`` runs one, and
  ``--checkpoint`` / ``--resume`` persist and continue a session.
* ``generate`` — generate a corpus replica and write it to JSON
  (``python -m repro generate --dataset wiki --out wiki.json``).
* ``serve`` — host the multi-session HTTP service
  (``python -m repro serve --port 8080 --spool-dir spool/``); see
  ``docs/SERVICE.md``.  SIGINT/SIGTERM shut it down cleanly, after
  checkpointing every session to the spool directory.
* ``lint`` — run the repo's reproducibility linter
  (``python -m repro lint --baseline``); see ``docs/ANALYSIS.md``.
  Exit code 1 means new findings against the baseline.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.api import (
    DatasetSpec,
    EffortSpec,
    FactCheckSession,
    GoalSpec,
    GuidanceSpec,
    SessionSpec,
)
from repro.datasets import PROFILES, load_dataset, save_database
from repro.experiments import EXPERIMENTS, ExperimentConfig
from repro.guidance import STRATEGIES


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'User Guidance for Efficient Fact "
        "Checking' (PVLDB 2019)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiment = commands.add_parser(
        "experiment", help="run one experiment driver and print its table"
    )
    experiment.add_argument(
        "name", choices=sorted(EXPERIMENTS), help="paper artifact to regenerate"
    )
    experiment.add_argument("--seed", type=int, default=7)
    experiment.add_argument("--runs", type=int, default=2)
    experiment.add_argument(
        "--scale-factor",
        type=float,
        default=1.0,
        help="multiplier on the default corpus scales",
    )
    experiment.add_argument(
        "--datasets",
        nargs="+",
        choices=sorted(PROFILES),
        default=None,
        help="restrict to these corpora",
    )

    validate = commands.add_parser(
        "validate", help="run a guided fact-checking session on a synthetic corpus"
    )
    validate.add_argument("--dataset", choices=sorted(PROFILES), default="snopes")
    validate.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="hybrid"
    )
    validate.add_argument("--seed", type=int, default=7)
    validate.add_argument("--scale", type=float, default=0.01)
    validate.add_argument(
        "--goal", type=float, default=0.9, help="precision goal in (0, 1]"
    )
    validate.add_argument(
        "--budget", type=int, default=None, help="maximum validations"
    )
    validate.add_argument(
        "--quiet", action="store_true", help="print only the final summary"
    )
    validate.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="run a SessionSpec JSON file (overrides the corpus/strategy flags)",
    )
    validate.add_argument(
        "--save-spec",
        default=None,
        metavar="PATH",
        help="write the resolved SessionSpec as JSON and exit",
    )
    validate.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume a checkpointed session instead of starting fresh",
    )
    validate.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a session checkpoint when the run finishes",
    )

    generate = commands.add_parser(
        "generate", help="generate a corpus replica and write JSON"
    )
    generate.add_argument("--dataset", choices=sorted(PROFILES), default="wiki")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--scale", type=float, default=0.1)
    generate.add_argument("--out", required=True, help="output JSON path")

    serve = commands.add_parser(
        "serve", help="host the multi-session HTTP service (docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--spool-dir",
        default=None,
        metavar="DIR",
        help="durability directory: sessions auto-checkpoint here and the "
        "registry is restored from it on startup",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker pool size (parallelism across independent sessions)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="auto-checkpoint a session after N mutating events "
        "(0 disables periodic checkpoints; needs --spool-dir)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once listening (ephemeral-port "
        "orchestration, e.g. CI)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every request"
    )

    lint = commands.add_parser(
        "lint",
        help="run the reproducibility linter (docs/ANALYSIS.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--baseline",
        nargs="?",
        const="analysis_baseline.json",
        default=None,
        metavar="PATH",
        help="gate on new findings only, against this committed baseline "
        "(default path: analysis_baseline.json)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the baseline and exit 0",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format",
    )
    lint.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the full findings report as JSON (CI artifact)",
    )

    return parser


def run_experiment(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        seed=args.seed,
        runs=args.runs,
        scale_factor=args.scale_factor,
        datasets=tuple(args.datasets) if args.datasets else ExperimentConfig().datasets,
    )
    result = EXPERIMENTS[args.name].run(config)
    print(result.format_table())
    return 0


def session_spec_from_args(args: argparse.Namespace) -> SessionSpec:
    """Resolve the ``validate`` flags into a declarative session spec."""
    return SessionSpec(
        mode="batch",
        seed=args.seed,
        dataset=DatasetSpec(name=args.dataset, seed=args.seed, scale=args.scale),
        guidance=GuidanceSpec(strategy=args.strategy, candidate_limit=20),
        effort=EffortSpec(
            goal=GoalSpec(kind="true_precision", threshold=args.goal),
            budget=args.budget,
        ),
    )


def run_validate(args: argparse.Namespace) -> int:
    if args.spec is not None:
        spec = SessionSpec.from_json(Path(args.spec).read_text(encoding="utf-8"))
    else:
        spec = session_spec_from_args(args)
    if spec.mode != "batch":
        print("validate only drives batch sessions; use the API for streaming")
        return 2
    if args.save_spec is not None:
        Path(args.save_spec).write_text(spec.to_json(), encoding="utf-8")
        print(f"wrote session spec to {args.save_spec}")
        return 0

    if args.resume is not None:
        session = FactCheckSession.load(args.resume)
        if session.mode != "batch":
            print("validate only drives batch sessions; use the API for streaming")
            return 2
        if not args.quiet:
            print(
                f"resumed session from {args.resume} "
                f"({session.trace.iterations} iterations recorded)"
            )
    else:
        session = FactCheckSession(spec).open()
        if not args.quiet:
            trace = session.trace
            print(f"corpus: {session.database!r}")
            print(
                f"initial precision {trace.initial_precision:.3f}, "
                f"entropy {trace.initial_entropy:.2f}"
            )

    def report(record) -> None:
        if args.quiet:
            return
        print(
            f"iter {record.iteration:>3}: {record.claim_ids[0]} <- "
            f"{record.user_values[0]} precision={record.precision:.3f} "
            f"dt={record.response_seconds * 1000:.0f}ms"
        )

    result = session.run(on_iteration=report)
    if args.checkpoint is not None:
        session.save(args.checkpoint)
        if not args.quiet:
            print(f"checkpoint written to {args.checkpoint}")
    from repro.validation import format_summary, summarize_trace

    print(format_summary(summarize_trace(result.trace)))
    return 0


def run_generate(args: argparse.Namespace) -> int:
    database = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    save_database(database, args.out)
    print(f"wrote {database!r} to {args.out}")
    return 0


def run_serve(args: argparse.Namespace) -> int:
    from repro.service import ReproServiceServer, ServiceConfig, SessionManager

    manager = SessionManager(
        ServiceConfig(
            spool_dir=args.spool_dir,
            workers=args.workers,
            checkpoint_every=(
                None if args.checkpoint_every == 0 else args.checkpoint_every
            ),
        )
    )
    restored = manager.restore()
    if restored:
        print(f"restored {len(restored)} session(s) from {args.spool_dir}: "
              f"{', '.join(restored)}")
    server = ReproServiceServer(
        manager, host=args.host, port=args.port, verbose=args.verbose
    )
    if args.port_file is not None:
        Path(args.port_file).write_text(str(server.server_port), encoding="utf-8")
    print(f"serving on {server.url} "
          f"(spool: {args.spool_dir or 'disabled'}, workers: {args.workers})",
          flush=True)

    # SIGINT/SIGTERM stop the accept loop; shutdown() must come from
    # another thread than serve_forever's.  Handlers can only be installed
    # on the main thread (tests drive serve_forever elsewhere).
    def stop(signum, frame) -> None:
        threading.Thread(target=server.shutdown, daemon=True).start()

    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, stop)
        signal.signal(signal.SIGTERM, stop)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        manager.shutdown(checkpoint=True)
    if args.spool_dir is not None:
        print("shutdown complete (all sessions checkpointed)", flush=True)
    else:
        print("shutdown complete", flush=True)
    return 0


def run_lint_command(args: argparse.Namespace) -> int:
    from repro.analysis.api import run_lint
    from repro.analysis.baseline import BaselineError

    baseline_path = args.baseline
    if args.write_baseline and baseline_path is None:
        baseline_path = "analysis_baseline.json"
    try:
        report = run_lint(
            paths=args.paths or None,
            baseline_path=baseline_path,
            write_baseline=args.write_baseline,
        )
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.report is not None:
        Path(args.report).write_text(report.render_json(), encoding="utf-8")
    if args.write_baseline:
        print(
            f"wrote baseline with {len(report.findings)} finding(s) "
            f"to {baseline_path}"
        )
        return 0
    if args.format == "json":
        print(report.render_json(), end="")
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "experiment": run_experiment,
        "validate": run_validate,
        "generate": run_generate,
        "serve": run_serve,
        "lint": run_lint_command,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
