"""API: spec/wire contract consistency rules.

* API001 — ``SpecError`` field paths must be real.  The HTTP service
  relays :attr:`SpecError.field` verbatim so clients can highlight the
  offending entry of a spec document; a typo'd path points users at a
  field that does not exist.  For every ``SpecError(..., field="<literal>")``
  raised inside a method of a dataclass, the first dotted segment (with
  any ``[...]`` subscript stripped) must name a field of that dataclass.
  Computed field paths (f-strings, variables, ``with_prefix`` chains)
  are out of static reach and are skipped.

* API002 — the deprecated ``repro._legacy`` shims must gain no new
  importers.  The allowlist below froze the importers at the time the
  rule landed; new code must target the modern ``repro.api`` surface.
  Shrink the list as modules are weaned — never grow it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, checker, rule_spec
from repro.analysis.rules import decorator_call, iter_functions, literal_str

rule_spec("API001", "SpecError field path does not name a dataclass field")
rule_spec("API002", "new import of the deprecated repro._legacy shims")

_LEGACY_MODULE = "repro._legacy"

#: Modules allowed to import ``repro._legacy`` (frozen 2026-08; shrink only).
LEGACY_IMPORT_ALLOWLIST = frozenset(
    {
        "repro",
        "repro._legacy",
        "repro.api.build",
        "repro.experiments.ablations",
        "repro.experiments.runner",
        "repro.experiments.stream_update_time",
        "repro.experiments.table2_stream_order",
        "repro.inference.icrf",
        "repro.streaming.process",
        "repro.validation.process",
    }
)


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        resolved = decorator_call(decorator)
        if resolved is not None and resolved[0] == "dataclass":
            return True
    return False


def _dataclass_fields(cls: ast.ClassDef) -> set[str]:
    fields: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.add(stmt.target.id)
    return fields


def _spec_error_field(call: ast.Call) -> tuple[str, ast.expr] | None:
    """The literal ``field=`` value of a ``SpecError(...)`` call, if any."""
    func_name = None
    if isinstance(call.func, ast.Name):
        func_name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        func_name = call.func.attr
    if func_name != "SpecError":
        return None
    for kw in call.keywords:
        if kw.arg == "field":
            value = literal_str(kw.value)
            if value is not None:
                return value, kw.value
            return None
    if len(call.args) >= 2:
        value = literal_str(call.args[1])
        if value is not None:
            return value, call.args[1]
    return None


def _first_segment(field_path: str) -> str:
    head = field_path.split(".", 1)[0]
    return head.split("[", 1)[0]


def _check_dataclass(ctx: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
    fields = _dataclass_fields(cls)
    for func in iter_functions(cls.body):
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            resolved = _spec_error_field(node)
            if resolved is None:
                continue
            field_path, _ = resolved
            head = _first_segment(field_path)
            if head and head not in fields:
                yield ctx.finding(
                    "API001",
                    node,
                    f"SpecError field path {field_path!r} does not start "
                    f"with a field of `{cls.name}` "
                    f"(fields: {', '.join(sorted(fields))})",
                    hint=(
                        "fix the path, or raise from the owning spec and "
                        "compose paths with SpecError.with_prefix"
                    ),
                )


@checker
def check_api(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and _is_dataclass(node):
            yield from _check_dataclass(ctx, node)
    if ctx.module_name and ctx.module_name in LEGACY_IMPORT_ALLOWLIST:
        return
    for node in ast.walk(ctx.tree):
        imported = None
        if isinstance(node, ast.Import):
            if any(alias.name == _LEGACY_MODULE for alias in node.names):
                imported = _LEGACY_MODULE
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == _LEGACY_MODULE:
                imported = _LEGACY_MODULE
            elif node.module == "repro" and any(
                alias.name == "_legacy" for alias in node.names
            ):
                imported = _LEGACY_MODULE
        if imported is not None:
            yield ctx.finding(
                "API002",
                node,
                f"import of deprecated `{imported}` outside the frozen "
                f"allowlist",
                hint=(
                    "use the modern repro.api surface; the shim allowlist "
                    "in repro.analysis.rules.api_contract only shrinks"
                ),
            )
