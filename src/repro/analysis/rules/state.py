"""STATE: checkpoint completeness rules.

Checkpoint/resume exactness (PR 2) requires ``state_dict`` to capture
*every* piece of mutable state: a field that drifts after ``__init__``
but is skipped by the checkpoint diverges silently after resume.  For
each class defining the checkpoint protocol (``state_dict`` +
``load_state_dict``, and optionally the streaming-side
``mutable_state_dict`` / ``load_mutable_state``):

* every ``self.<attr>`` bound in ``__init__`` must be mentioned in one
  of the state methods or listed in the class-level ``_STATE_EXCLUDED``
  tuple of immutable-config attributes (STATE001);
* ``_STATE_EXCLUDED`` entries must still exist in ``__init__``, so the
  exclusion list cannot rot (STATE002).

A *mention* is any ``self.<attr>`` read or write inside the state
methods — serialisation shapes vary too much to demand a specific
pattern, and requiring a mention is what catches the forgotten-field
bug this rule exists for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, checker, rule_spec
from repro.analysis.rules import (
    iter_functions,
    literal_str_seq,
    mentioned_self_attrs,
    plain_self_attr_assignments,
)

rule_spec(
    "STATE001",
    "__init__ attribute missing from state_dict and _STATE_EXCLUDED",
)
rule_spec("STATE002", "_STATE_EXCLUDED lists an attribute __init__ never assigns")

_STATE_METHODS = (
    "state_dict",
    "load_state_dict",
    "mutable_state_dict",
    "load_mutable_state",
)
_EXCLUSION_LIST = "_STATE_EXCLUDED"


def _exclusion_list(cls: ast.ClassDef) -> tuple[tuple[str, ...], int] | None:
    for stmt in cls.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == _EXCLUSION_LIST:
                value = stmt.value
                names = literal_str_seq(value) if value is not None else None
                return (names or (), stmt.lineno)
    return None


def _check_class(ctx: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
    methods = {func.name: func for func in iter_functions(cls.body)}
    if "state_dict" not in methods or "load_state_dict" not in methods:
        return
    init = methods.get("__init__")
    if init is None:
        return
    init_attrs = plain_self_attr_assignments(init)
    mentioned: set[str] = set()
    for name in _STATE_METHODS:
        func = methods.get(name)
        if func is not None:
            mentioned |= mentioned_self_attrs(func)
    exclusion = _exclusion_list(cls)
    excluded = exclusion[0] if exclusion else ()
    excluded_line = exclusion[1] if exclusion else cls.lineno
    for attr, lineno in sorted(init_attrs.items(), key=lambda kv: kv[1]):
        if attr in mentioned or attr in excluded:
            continue
        yield ctx.finding(
            "STATE001",
            lineno,
            f"`{cls.name}.__init__` binds `self.{attr}` but no state method "
            f"mentions it and {_EXCLUSION_LIST} does not list it",
            hint=(
                "serialise it in state_dict/load_state_dict, or add it to "
                f"{_EXCLUSION_LIST} if it is immutable configuration"
            ),
        )
    for attr in excluded:
        if attr not in init_attrs:
            yield ctx.finding(
                "STATE002",
                excluded_line,
                f"`{cls.name}.{_EXCLUSION_LIST}` lists `{attr}`, which "
                f"__init__ never assigns",
                hint="remove the stale entry",
            )


@checker
def check_state(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            yield from _check_class(ctx, node)
