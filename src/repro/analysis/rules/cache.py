"""CACHE: derived-cache coherence rules.

The hot-path classes (``FactDatabase``, ``CliqueFeaturizer``,
``CrfModel``, ``NumpyEngine``) memoise derived structures — clique
views, CSR design matrices, engine gather tables — over mutable backing
arrays.  PR 6's incremental growth made it easy to write a new mutator
and forget the paired invalidation, which corrupts results only when a
stale cache happens to be consulted.  These rules make the pairing a
checked contract:

* the accessor declares the cache with
  ``@derived_cache(name, backing=..., hook=..., storage=...)``;
* every method that writes a backing field must carry
  ``@mutates(name)`` (CACHE001);
* every ``@mutates(name)`` method must discharge its obligation by
  calling the cache's hook or assigning its storage slot (CACHE002);
* ``@mutates`` may only name declared caches (CACHE003).

``__init__``, the accessor, and the hook are exempt from CACHE001: the
first runs before any cache exists, the latter two *are* the cache.

Known limitation: mutation through method calls on a backing field
(``self._labels.update(...)``) is invisible to the assignment scan;
mutate via assignment or declare ``@mutates`` explicitly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, checker, rule_spec
from repro.analysis.rules import (
    assigned_self_attrs,
    decorator_call,
    iter_functions,
    literal_str,
    literal_str_seq,
    self_method_calls,
)

rule_spec(
    "CACHE001",
    "method mutates a cache's backing field without declaring @mutates",
)
rule_spec(
    "CACHE002",
    "@mutates method neither calls the cache hook nor assigns its storage",
)
rule_spec("CACHE003", "@mutates names a cache not declared on this class")


@dataclass
class _CacheDecl:
    name: str
    accessor: str
    backing: tuple[str, ...] = ()
    hook: str | None = None
    storage: str | None = None


@dataclass
class _ClassContracts:
    caches: dict[str, _CacheDecl] = field(default_factory=dict)
    mutates: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    hooks: set[str] = field(default_factory=set)
    accessors: set[str] = field(default_factory=set)

    @property
    def backing_map(self) -> dict[str, list[_CacheDecl]]:
        mapping: dict[str, list[_CacheDecl]] = {}
        for decl in self.caches.values():
            for attr in decl.backing:
                mapping.setdefault(attr, []).append(decl)
        return mapping


def _collect_contracts(cls: ast.ClassDef) -> _ClassContracts:
    contracts = _ClassContracts()
    for func in iter_functions(cls.body):
        for decorator in func.decorator_list:
            resolved = decorator_call(decorator)
            if resolved is None:
                continue
            name, call = resolved
            if call is None:
                continue
            if name == "derived_cache":
                decl = _parse_derived_cache(call, func.name)
                if decl is not None:
                    contracts.caches[decl.name] = decl
                    contracts.accessors.add(func.name)
                    if decl.hook:
                        contracts.hooks.add(decl.hook)
            elif name == "mutates":
                for arg in call.args:
                    cache_name = literal_str(arg)
                    if cache_name is not None:
                        contracts.mutates.setdefault(func.name, []).append(
                            (cache_name, decorator.lineno)
                        )
    return contracts


def _parse_derived_cache(call: ast.Call, accessor: str) -> _CacheDecl | None:
    if not call.args:
        return None
    name = literal_str(call.args[0])
    if name is None:
        return None
    decl = _CacheDecl(name=name, accessor=accessor)
    for kw in call.keywords:
        if kw.arg == "backing":
            decl.backing = literal_str_seq(kw.value) or ()
        elif kw.arg == "hook":
            decl.hook = literal_str(kw.value)
        elif kw.arg == "storage":
            decl.storage = literal_str(kw.value)
    return decl


def _check_class(ctx: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
    contracts = _collect_contracts(cls)
    if not contracts.caches and not contracts.mutates:
        return
    backing_map = contracts.backing_map
    storage_attrs = {
        decl.storage: decl.name for decl in contracts.caches.values() if decl.storage
    }
    for func in iter_functions(cls.body):
        declared = {name for name, _ in contracts.mutates.get(func.name, [])}
        # CACHE003: undeclared cache names.
        for cache_name, lineno in contracts.mutates.get(func.name, []):
            if cache_name not in contracts.caches:
                yield ctx.finding(
                    "CACHE003",
                    lineno,
                    f"@mutates({cache_name!r}) on `{cls.name}.{func.name}` "
                    f"names a cache not declared via @derived_cache",
                    hint="declare the cache on its accessor or fix the name",
                )
        written = assigned_self_attrs(func)
        calls = self_method_calls(func)
        exempt_from_cache001 = (
            func.name == "__init__"
            or func.name in contracts.hooks
            or func.name in contracts.accessors
        )
        # CACHE001: backing-field writes require a declaration.
        if not exempt_from_cache001:
            for attr, lineno in sorted(written.items(), key=lambda kv: kv[1]):
                for decl in backing_map.get(attr, []):
                    if decl.name in declared:
                        continue
                    if attr == decl.storage:
                        continue
                    yield ctx.finding(
                        "CACHE001",
                        lineno,
                        f"`{cls.name}.{func.name}` writes `self.{attr}`, a "
                        f"backing field of cache {decl.name!r}, without "
                        f"@mutates({decl.name!r})",
                        hint=(
                            f"decorate with @mutates({decl.name!r}) and "
                            f"invalidate via "
                            f"{decl.hook or decl.storage or 'the cache hook'}"
                        ),
                    )
        # CACHE002: declared mutators must discharge the obligation.
        for cache_name, lineno in contracts.mutates.get(func.name, []):
            decl = contracts.caches.get(cache_name)
            if decl is None:
                continue  # already CACHE003
            discharged = (decl.hook is not None and decl.hook in calls) or (
                decl.storage is not None and decl.storage in written
            )
            if not discharged:
                options = []
                if decl.hook:
                    options.append(f"call self.{decl.hook}()")
                if decl.storage:
                    options.append(f"assign self.{decl.storage}")
                yield ctx.finding(
                    "CACHE002",
                    lineno,
                    f"`{cls.name}.{func.name}` declares @mutates({cache_name!r}) "
                    f"but never invalidates or patches the cache",
                    hint=" or ".join(options) or "declare a hook/storage on the cache",
                )


@checker
def check_cache(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            yield from _check_class(ctx, node)
