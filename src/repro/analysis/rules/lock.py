"""LOCK: per-session lock discipline in the service layer.

The service guarantee — interleaved requests against one hosted session
produce bit-for-bit the results of a single-threaded run — holds only
if every touch of a session's mutable state happens under that
session's RLock.  The pattern in :mod:`repro.service.manager`:

* ``_ManagedSession`` owns the lock and declares its guarded attributes
  in a class-level ``_LOCK_GUARDED`` tuple;
* operations run as closures handed to ``self._run(managed, operation)``,
  which takes ``managed.lock`` around the closure;
* called-under-lock helpers are decorated
  ``@requires_lock("managed")``.

Rules:

* LOCK001 — a guarded attribute (``managed.session`` & co.) is accessed
  outside a locked region.  Locked regions are ``with <base>.lock:``
  bodies (for that base), bodies of ``@requires_lock(param)`` functions
  (for that param), and closures passed to ``self._run(<base>, fn)``
  (for that base).
* LOCK002 — a ``@requires_lock`` helper is called without the lock: the
  argument bound to the declared parameter must itself be locked at the
  call site.

A nested function does **not** inherit its definition site's locked
state: a closure may escape the ``with`` block that defined it, so it
must earn its own locked region via ``_run`` or ``@requires_lock``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, checker, rule_spec
from repro.analysis.rules import (
    decorator_call,
    iter_functions,
    literal_str,
    literal_str_seq,
)

rule_spec("LOCK001", "guarded session attribute accessed outside its lock")
rule_spec("LOCK002", "@requires_lock helper called without the lock held")

_GUARD_LIST = "_LOCK_GUARDED"
_RUNNER = "_run"

_FuncNode = ast.FunctionDef | ast.AsyncFunctionDef


def _guarded_attrs(tree: ast.Module) -> frozenset[str]:
    """Union of ``_LOCK_GUARDED`` declarations across the module's classes."""
    guarded: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and stmt.value is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == _GUARD_LIST:
                        guarded.update(literal_str_seq(stmt.value) or ())
    return frozenset(guarded)


def _requires_lock_param(func: _FuncNode) -> str | None:
    for decorator in func.decorator_list:
        resolved = decorator_call(decorator)
        if resolved is None:
            continue
        name, call = resolved
        if name != "requires_lock":
            continue
        if call is not None and call.args:
            return literal_str(call.args[0]) or "self"
        return "self"
    return None


def _requires_lock_signatures(tree: ast.Module) -> dict[str, int]:
    """``@requires_lock`` method name → positional index of the locked
    parameter (0 = first argument after ``self``)."""
    signatures: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for func in iter_functions(node.body):
            param = _requires_lock_param(func)
            if param is None:
                continue
            names = [arg.arg for arg in func.args.args]
            if names and names[0] == "self":
                names = names[1:]
            if param in names:
                signatures[func.name] = names.index(param)
    return signatures


def _with_locked_bases(node: ast.With | ast.AsyncWith) -> set[str]:
    bases: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr == "lock"
            and isinstance(expr.value, ast.Name)
        ):
            bases.add(expr.value.id)
    return bases


def _run_closure_bases(func: _FuncNode) -> dict[str, str]:
    """Nested-function name → base name locked for it via ``self._run``."""
    mapping: dict[str, str] = {}
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == _RUNNER
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
            and len(node.args) >= 2
        ):
            continue
        base, closure = node.args[0], node.args[1]
        if isinstance(base, ast.Name) and isinstance(closure, ast.Name):
            mapping[closure.id] = base.id
    return mapping


class _LockWalker:
    def __init__(
        self,
        ctx: ModuleContext,
        guarded: frozenset[str],
        helper_params: dict[str, int],
    ) -> None:
        self.ctx = ctx
        self.guarded = guarded
        self.helper_params = helper_params
        self.findings: list[Finding] = []

    def walk_function(self, func: _FuncNode, locked: frozenset[str]) -> None:
        closure_bases = _run_closure_bases(func)
        for stmt in func.body:
            self._visit(stmt, locked, closure_bases)

    def _visit(
        self, node: ast.AST, locked: frozenset[str], closure_bases: dict[str, str]
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner: set[str] = set()
            param = _requires_lock_param(node)
            if param is not None:
                inner.add(param)
            if node.name in closure_bases:
                inner.add(closure_bases[node.name])
            self.walk_function(node, frozenset(inner))
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._visit(item.context_expr, locked, closure_bases)
            body_locked = locked | _with_locked_bases(node)
            for stmt in node.body:
                self._visit(stmt, frozenset(body_locked), closure_bases)
            return
        if isinstance(node, ast.Attribute):
            if (
                node.attr in self.guarded
                and isinstance(node.value, ast.Name)
                and node.value.id != "self"
                and node.value.id not in locked
            ):
                self.findings.append(
                    self.ctx.finding(
                        "LOCK001",
                        node,
                        f"`{node.value.id}.{node.attr}` accessed outside "
                        f"`with {node.value.id}.lock`",
                        hint=(
                            "run the access inside self._run(...), a "
                            "`with <session>.lock:` block, or a "
                            "@requires_lock helper"
                        ),
                    )
                )
        if isinstance(node, ast.Call):
            self._check_helper_call(node, locked)
        for child in ast.iter_child_nodes(node):
            self._visit(child, locked, closure_bases)

    def _check_helper_call(self, node: ast.Call, locked: frozenset[str]) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in self.helper_params
        ):
            return
        index = self.helper_params[func.attr]
        if index >= len(node.args):
            return
        arg = node.args[index]
        if isinstance(arg, ast.Name) and arg.id not in locked:
            self.findings.append(
                self.ctx.finding(
                    "LOCK002",
                    node,
                    f"`self.{func.attr}({arg.id}, ...)` requires "
                    f"`{arg.id}.lock` to be held at the call site",
                    hint=(
                        f"call from inside `with {arg.id}.lock:` or from a "
                        f"closure passed to self._run({arg.id}, ...)"
                    ),
                )
            )


@checker
def check_lock(ctx: ModuleContext) -> Iterator[Finding]:
    guarded = _guarded_attrs(ctx.tree)
    helper_params = _requires_lock_signatures(ctx.tree)
    if not guarded and not helper_params:
        return
    walker = _LockWalker(ctx, guarded, helper_params)
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            for func in iter_functions(node.body):
                param = _requires_lock_param(func)
                walker.walk_function(
                    func, frozenset({param} if param is not None else set())
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            param = _requires_lock_param(node)
            walker.walk_function(
                node, frozenset({param} if param is not None else set())
            )
    yield from walker.findings
