"""Built-in rule families and shared AST helpers.

Importing the submodules registers their specs and checkers with
:mod:`repro.analysis.registry`; :func:`registry.load_default_rules`
does so lazily.
"""

from __future__ import annotations

import ast
from typing import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """``"a.b.c"`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def decorator_call(node: ast.expr) -> tuple[str, ast.Call | None] | None:
    """Resolve a decorator expression to (terminal name, call-or-None)."""
    call = None
    target = node
    if isinstance(target, ast.Call):
        call = target
        target = target.func
    name = dotted_name(target)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1], call


def literal_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def literal_str_seq(node: ast.expr) -> tuple[str, ...] | None:
    """A tuple/list of string literals, or a single string literal."""
    single = literal_str(node)
    if single is not None:
        return (single,)
    if isinstance(node, (ast.Tuple, ast.List)):
        items = [literal_str(elt) for elt in node.elts]
        if all(item is not None for item in items):
            return tuple(items)  # type: ignore[arg-type]
    return None


def iter_functions(
    body: list[ast.stmt],
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


def attr_base_name(node: ast.expr) -> str | None:
    """``"self"`` for ``self.x``, ``"managed"`` for ``managed.session``."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id
    return None


def _assignment_root_attr(target: ast.expr) -> str | None:
    """The ``self`` attribute ultimately written by an assignment target.

    Handles ``self.x = v``, ``self.x[i] = v``, ``self.x[i].y = v`` and
    so on: unwrap Subscript/Attribute layers until the chain bottoms out
    at ``self.<attr>``.
    """
    node = target
    seen_inner = False
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
            seen_inner = True
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
            seen_inner = True
        else:
            return None
        if not seen_inner:  # pragma: no cover - loop structure guard
            return None


def assigned_self_attrs(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    include_nested: bool = True,
) -> dict[str, int]:
    """``self`` attributes written anywhere in ``func`` → first line.

    Covers plain/augmented/annotated assignment, ``del``, and writes
    through subscripts (``self._labels[i] = v`` mutates ``_labels``).
    """
    written: dict[str, int] = {}

    def record(target: ast.expr, lineno: int) -> None:
        attr = _assignment_root_attr(target)
        if attr is not None and attr not in written:
            written[attr] = lineno

    for node in ast.walk(func):
        if not include_nested and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            if node is not func:
                continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        record(elt, node.lineno)
                else:
                    record(target, node.lineno)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            record(node.target, node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record(target, node.lineno)
    return written


def plain_self_attr_assignments(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, int]:
    """Direct ``self.<attr> = ...`` bindings (no subscripts) → first line."""
    written: dict[str, int] = {}
    for node in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                candidates = list(target.elts)
            else:
                candidates = [target]
            for candidate in candidates:
                if (
                    isinstance(candidate, ast.Attribute)
                    and isinstance(candidate.value, ast.Name)
                    and candidate.value.id == "self"
                    and candidate.attr not in written
                ):
                    written[candidate.attr] = node.lineno
    return written


def self_method_calls(func: ast.AST) -> set[str]:
    """Names of methods invoked as ``self.<name>(...)`` within ``func``."""
    calls: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            calls.add(node.func.attr)
    return calls


def mentioned_self_attrs(func: ast.AST) -> set[str]:
    """Every ``self.<attr>`` read or written anywhere in ``func``."""
    attrs: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            attrs.add(node.attr)
    return attrs
