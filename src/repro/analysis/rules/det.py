"""DET: determinism rules — no ambient randomness, clocks, or set order.

Reproducibility in this framework means bit-for-bit: the same spec and
seed must produce the same Gibbs chain, the same guidance ranking, the
same checkpoint bytes.  Ambient entropy — the process-global RNGs, the
wall clock, the iteration order of hash sets — breaks that silently.
All randomness must arrive through :mod:`repro.utils.rng` generators.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ModuleContext, checker, rule_spec
from repro.analysis.rules import dotted_name

rule_spec("DET001", "call into the process-global `random` module")
rule_spec("DET002", "use of the global `numpy.random` namespace")
rule_spec("DET003", "wall-clock read (`time.time` / `datetime.now`)")
rule_spec("DET004", "iteration over an unordered set")

# Instance-producing names are fine to import from `random`; everything
# else on the module draws from the process-global generator.
_RANDOM_SAFE_IMPORTS = {"Random", "SystemRandom"}

_WALL_CLOCK_TIME = {"time", "time_ns"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}


class _ImportInfo:
    def __init__(self, tree: ast.Module) -> None:
        self.random_aliases: set[str] = set()
        self.numpy_aliases: set[str] = set()
        self.numpy_random_aliases: set[str] = set()
        self.time_aliases: set[str] = set()
        self.datetime_aliases: set[str] = set()
        self.datetime_class_aliases: set[str] = set()
        self.bare_clock_names: set[str] = set()
        self.from_random: dict[str, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_aliases.add(bound)
                    elif alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self.numpy_random_aliases.add(alias.asname)
                        else:
                            self.numpy_aliases.add(bound)
                    elif alias.name == "time":
                        self.time_aliases.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _RANDOM_SAFE_IMPORTS:
                            self.from_random[alias.asname or alias.name] = node.lineno
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random_aliases.add(alias.asname or alias.name)
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME:
                            self.bare_clock_names.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name == "datetime":
                            self.datetime_class_aliases.add(alias.asname or alias.name)


def _is_numpy_random(name: str, imports: _ImportInfo) -> bool:
    parts = name.split(".")
    if parts[0] in imports.numpy_random_aliases:
        return True
    return (
        len(parts) >= 2
        and parts[0] in imports.numpy_aliases
        and parts[1] == "random"
    )


def _iter_target_is_bare_set(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@checker
def check_det(ctx: ModuleContext) -> Iterator[Finding]:
    imports = _ImportInfo(ctx.tree)
    for lineno in set(imports.from_random.values()) - {0}:
        yield ctx.finding(
            "DET001",
            lineno,
            "importing draw functions from the global `random` module",
            hint="thread a Generator from repro.utils.rng.ensure_rng instead",
        )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 1 and name in imports.bare_clock_names:
                yield ctx.finding(
                    "DET003",
                    node,
                    f"wall-clock read `{name}()`",
                    hint=(
                        "use time.perf_counter (repro.utils.timer) for "
                        "durations; pass timestamps in as data"
                    ),
                )
            elif len(parts) >= 2 and parts[0] in imports.random_aliases:
                yield ctx.finding(
                    "DET001",
                    node,
                    f"call to global-RNG function `{name}()`",
                    hint="thread a Generator from repro.utils.rng.ensure_rng instead",
                )
            elif _is_numpy_random(name, imports):
                yield ctx.finding(
                    "DET002",
                    node,
                    f"use of the global numpy.random namespace: `{name}()`",
                    hint=(
                        "obtain generators via repro.utils.rng "
                        "(ensure_rng / derive_rng / spawn_rngs)"
                    ),
                )
            elif (
                len(parts) == 2
                and parts[0] in imports.time_aliases
                and parts[1] in _WALL_CLOCK_TIME
            ):
                yield ctx.finding(
                    "DET003",
                    node,
                    f"wall-clock read `{name}()`",
                    hint=(
                        "use time.perf_counter (repro.utils.timer) for "
                        "durations; pass timestamps in as data"
                    ),
                )
            elif parts[-1] in _WALL_CLOCK_DATETIME and (
                parts[0] in imports.datetime_class_aliases
                or (len(parts) >= 2 and parts[0] in imports.datetime_aliases)
            ):
                yield ctx.finding(
                    "DET003",
                    node,
                    f"wall-clock read `{name}()`",
                    hint="pass timestamps in as data instead of reading the clock",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _iter_target_is_bare_set(node.iter):
                yield ctx.finding(
                    "DET004",
                    node,
                    "iteration over an unordered set",
                    hint="wrap in sorted(...) to fix the traversal order",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for comp in node.generators:
                if _iter_target_is_bare_set(comp.iter):
                    yield ctx.finding(
                        "DET004",
                        comp.iter,
                        "comprehension iterates over an unordered set",
                        hint="wrap in sorted(...) to fix the traversal order",
                    )
