"""Rule registry: rule specs, checker registration, module context.

Rule *specs* (id, severity, description) and *checkers* (functions that
scan one module and yield findings) are registered separately: a rule
family such as CACHE computes one analysis pass per class but emits
findings under several ids (CACHE001..CACHE003), so checkers own one
AST walk and may report any spec they declare.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.analysis.findings import Finding, Severity


@dataclass(frozen=True)
class RuleSpec:
    id: str
    severity: Severity
    description: str


@dataclass
class ModuleContext:
    """Everything a checker needs to know about one source module."""

    path: str
    source: str
    tree: ast.Module
    module_name: str = ""
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def finding(
        self, rule_id: str, node: ast.AST | int, message: str, hint: str = ""
    ) -> Finding:
        spec = get_spec(rule_id)
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            path=self.path,
            line=line,
            rule=spec.id,
            severity=spec.severity,
            message=message,
            hint=hint,
        )


Checker = Callable[[ModuleContext], Iterable[Finding]]

_SPECS: dict[str, RuleSpec] = {}
_CHECKERS: list[Checker] = []
_LOADED = False


def rule_spec(
    rule_id: str, description: str, severity: Severity = Severity.ERROR
) -> RuleSpec:
    """Register (or return the existing) spec for ``rule_id``."""
    existing = _SPECS.get(rule_id)
    if existing is not None:
        return existing
    spec = RuleSpec(id=rule_id, severity=severity, description=description)
    _SPECS[rule_id] = spec
    return spec


def get_spec(rule_id: str) -> RuleSpec:
    try:
        return _SPECS[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule id: {rule_id!r}") from None


def all_specs() -> list[RuleSpec]:
    load_default_rules()
    return [spec for _, spec in sorted(_SPECS.items())]


def checker(func: Checker) -> Checker:
    """Register a checker function; one call per linted module."""
    _CHECKERS.append(func)
    return func


def all_checkers() -> list[Checker]:
    load_default_rules()
    return list(_CHECKERS)


def load_default_rules() -> None:
    """Import the built-in rule modules (idempotent)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from repro.analysis.rules import api_contract, cache, det, lock, state  # noqa: F401


def run_checkers(ctx: ModuleContext) -> Iterator[Finding]:
    for check in all_checkers():
        yield from check(ctx)
