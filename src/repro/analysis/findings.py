"""Structured lint findings and reports."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence


class Severity(str, Enum):
    """How a finding affects the lint exit status.

    ``ERROR`` findings gate CI; ``WARNING`` findings are reported but do
    not fail the run on their own.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``fingerprint`` intentionally omits the line number so that unrelated
    edits moving code around do not invalidate a committed baseline; the
    baseline matches findings by (path, rule, message) with counts.
    """

    path: str
    line: int
    rule: str
    severity: Severity
    message: str
    hint: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.path, self.rule, self.message)

    def render(self) -> str:
        text = f"{self.location}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """The outcome of a lint run over a set of files.

    ``findings`` holds every non-suppressed finding; ``new_findings`` the
    subset not matched by the baseline (equal to ``findings`` when no
    baseline was applied).  ``suppressed`` counts findings silenced by
    inline ``# repro-lint: disable=...`` comments.
    """

    findings: list[Finding] = field(default_factory=list)
    new_findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    baseline_applied: bool = False

    @property
    def gating(self) -> list[Finding]:
        """Findings that should fail the run."""
        pool = self.new_findings if self.baseline_applied else self.findings
        return [f for f in pool if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.gating

    def render_text(self) -> str:
        lines = []
        pool = self.new_findings if self.baseline_applied else self.findings
        for finding in sorted(pool, key=lambda f: (f.path, f.line, f.rule)):
            lines.append(finding.render())
        label = "new finding(s)" if self.baseline_applied else "finding(s)"
        summary = (
            f"{len(pool)} {label}, {self.suppressed} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        if self.baseline_applied:
            summary += f" ({len(self.findings)} total incl. baselined)"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baseline_applied": self.baseline_applied,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "new_findings": [f.to_dict() for f in self.new_findings],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))


def count_fingerprints(findings: Sequence[Finding]) -> dict[tuple[str, str, str], int]:
    counts: dict[tuple[str, str, str], int] = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    return counts
