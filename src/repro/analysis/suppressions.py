"""Inline suppression comments for lint findings.

Syntax (rule lists are comma-separated, ``all`` silences every rule):

* ``x = random.random()  # repro-lint: disable=DET001`` — same line;
* a bare ``# repro-lint: disable=DET001`` comment line suppresses the
  *next* line (handy when the offending line is long);
* ``# repro-lint: disable-file=DET002`` anywhere in the file suppresses
  the rule for the whole file.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass
class SuppressionIndex:
    """Per-file map of suppression directives, queried by the runner."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = frozenset()

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "all" in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return "all" in rules or rule in rules


def _parse_rules(raw: str) -> frozenset[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def build_suppression_index(source: str) -> SuppressionIndex:
    """Scan ``source`` with the tokenizer so directives inside string
    literals are not mistaken for suppressions."""
    by_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    # Track which lines hold only a comment (plus whitespace): a directive
    # on such a line applies to the following line instead.
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if not match:
            continue
        kind, raw_rules = match.groups()
        rules = _parse_rules(raw_rules)
        if not rules:
            continue
        if kind == "disable-file":
            file_wide.update(rules)
            continue
        lineno = token.start[0]
        prefix = lines[lineno - 1][: token.start[1]] if lineno <= len(lines) else ""
        target = lineno + 1 if not prefix.strip() else lineno
        by_line.setdefault(target, set()).update(rules)
    return SuppressionIndex(
        by_line={line: frozenset(rules) for line, rules in by_line.items()},
        file_wide=frozenset(file_wide),
    )
