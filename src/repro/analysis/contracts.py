"""Runtime-side contract decorators read statically by the linter.

The cache-coherence (CACHE) and lock-discipline (LOCK) rules need the
runtime code to *declare* its contracts: which derived caches exist,
which fields back them, which hook refreshes them, and which helper
methods assume a lock is already held.  These decorators carry those
declarations.  At runtime they are (nearly) free — they attach a small
metadata attribute to the function and return it unchanged — so the
hottest paths in the framework can wear them without cost.

The linter never imports the decorated modules; it reads the decorator
*calls* out of the AST.  Because of that, every argument passed to these
decorators in framework code must be a literal (string, tuple of
strings, or ``None``).  Passing computed values silently hides the
declaration from :mod:`repro.analysis.rules.cache` and
:mod:`repro.analysis.rules.lock`.

This module is stdlib-only and imports nothing from the rest of
``repro`` so the lowest layers (``repro.data``, ``repro.crf``) can use
it without cycles.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

_F = TypeVar("_F", bound=Callable)

#: Attribute name under which contract metadata is stored on functions.
CONTRACT_ATTR = "__repro_contracts__"


def _annotate(func: _F, key: str, value) -> _F:
    target = func
    # Decorators compose with @property / @functools.cached_property; the
    # metadata belongs on the underlying function either way.
    if isinstance(target, property):  # pragma: no cover - defensive
        target = target.fget
    meta = getattr(target, CONTRACT_ATTR, None)
    if meta is None:
        meta = {}
        setattr(target, CONTRACT_ATTR, meta)
    meta.setdefault(key, []).append(value)
    return func


def mutates(*cache_names: str) -> Callable[[_F], _F]:
    """Declare that a method mutates the backing fields of named caches.

    The CACHE rules require every ``@mutates("x")`` method to either call
    cache ``x``'s invalidation/patch hook or assign its storage slot, and
    conversely flag methods that write a cache's backing fields without
    declaring ``@mutates``.
    """

    def decorate(func: _F) -> _F:
        for name in cache_names:
            _annotate(func, "mutates", name)
        return func

    return decorate


def derived_cache(
    name: str,
    *,
    backing: Sequence[str] = (),
    hook: str | None = None,
    storage: str | None = None,
) -> Callable[[_F], _F]:
    """Declare a derived cache on the decorated accessor.

    ``name``
        Cache identifier referenced by :func:`mutates` on the same class.
    ``backing``
        ``self`` attribute names the cached value is derived from.  Any
        method assigning one of these must be declared ``@mutates(name)``.
    ``hook``
        Method that invalidates or incrementally patches the cache.
        Calling it discharges a mutator's obligation.
    ``storage``
        ``self`` attribute holding the memoised value.  Assigning it
        (e.g. ``self._design_matrix = None``) also discharges a
        mutator's obligation.
    """

    def decorate(func: _F) -> _F:
        return _annotate(
            func,
            "derived_cache",
            {
                "name": name,
                "backing": tuple(backing),
                "hook": hook,
                "storage": storage,
            },
        )

    return decorate


def requires_lock(param: str = "self") -> Callable[[_F], _F]:
    """Declare that callers must hold ``param``'s lock around this method.

    Used on internal helpers (e.g. ``SessionManager._summary``) that touch
    a managed session but are only reached from code that already holds
    the session's RLock.  The LOCK rules treat the decorated body as a
    locked region and require every call site to itself be inside one.
    """

    def decorate(func: _F) -> _F:
        return _annotate(func, "requires_lock", param)

    return decorate
