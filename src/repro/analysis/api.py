"""Programmatic entry point: collect files, run rules, apply baseline.

``run_lint`` is what both ``python -m repro lint`` and the test-suite
self-check call; it returns a :class:`~repro.analysis.findings.LintReport`
and never raises on findings (only on unusable baselines).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.findings import Finding, LintReport, sort_findings
from repro.analysis.registry import ModuleContext, rule_spec, run_checkers
from repro.analysis.suppressions import build_suppression_index

rule_spec("LINT001", "file could not be parsed")


def default_paths() -> list[Path]:
    """The ``repro`` package source tree (what CI lints)."""
    return [Path(__file__).resolve().parent.parent]


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while keeping deterministic order.
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def display_path(path: Path) -> str:
    """Stable repo-relative path (what fingerprints and reports use)."""
    resolved = path.resolve()
    try:
        relative = resolved.relative_to(Path.cwd())
    except ValueError:
        relative = resolved
    return relative.as_posix()


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from the file path (best effort)."""
    parts = list(path.resolve().with_suffix("").parts)
    anchor = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            anchor = index
    if anchor is None:
        return ""
    module_parts = parts[anchor:]
    if module_parts and module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(module_parts)


def lint_source(
    source: str, path: str, module_name: str = ""
) -> tuple[list[Finding], int]:
    """Lint one module's source; returns (kept findings, suppressed count)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        empty = ModuleContext(path=path, source="", tree=ast.parse(""))
        finding = empty.finding("LINT001", exc.lineno or 1, f"syntax error: {exc.msg}")
        return [finding], 0
    ctx = ModuleContext(path=path, source=source, tree=tree, module_name=module_name)
    suppressions = build_suppression_index(source)
    kept: list[Finding] = []
    suppressed = 0
    for finding in run_checkers(ctx):
        if suppressions.is_suppressed(finding.rule, finding.line):
            suppressed += 1
        else:
            kept.append(finding)
    return sort_findings(kept), suppressed


def run_lint(
    paths: Sequence[str | Path] | None = None,
    baseline_path: str | Path | None = None,
    write_baseline: bool = False,
) -> LintReport:
    """Lint ``paths`` (default: the repro package source).

    ``baseline_path`` enables baseline mode: findings recorded there do
    not count as new.  With ``write_baseline`` the current findings are
    written to ``baseline_path`` (or the default name) instead of being
    compared.
    """
    targets = iter_python_files(paths if paths else default_paths())
    report = LintReport(files_checked=len(targets))
    for path in targets:
        source = path.read_text(encoding="utf-8")
        shown = display_path(path)
        findings, suppressed = lint_source(source, shown, module_name_for(path))
        report.findings.extend(findings)
        report.suppressed += suppressed
    report.findings = sort_findings(report.findings)
    if write_baseline:
        target = Path(baseline_path) if baseline_path else Path(DEFAULT_BASELINE_NAME)
        save_baseline(target, report.findings)
        report.baseline_applied = True
        report.new_findings = []
        return report
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        report.new_findings = apply_baseline(report.findings, baseline)
        report.baseline_applied = True
    else:
        report.new_findings = list(report.findings)
    return report
