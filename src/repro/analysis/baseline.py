"""Committed-baseline support: pre-existing findings don't gate CI.

A baseline is a JSON document mapping finding fingerprints — ``(path,
rule, message)``, deliberately line-insensitive — to occurrence counts.
Applying a baseline to a fresh run subtracts up to the recorded count of
each fingerprint; whatever remains is *new* and fails the build.  Fixing
a baselined finding never breaks the build (counts only bound from
above), so the baseline ratchets monotonically toward empty.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding, count_fingerprints

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis_baseline.json"


class BaselineError(ValueError):
    """The baseline file is missing, unreadable, or malformed."""


def save_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    counts = count_fingerprints(findings)
    entries = [
        {"path": fp[0], "rule": fp[1], "message": fp[2], "count": count}
        for fp, count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_baseline(path: str | Path) -> dict[tuple[str, str, str], int]:
    path = Path(path)
    if not path.exists():
        raise BaselineError(
            f"baseline file not found: {path} "
            f"(create it with `python -m repro lint --write-baseline`)"
        )
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file is not valid JSON: {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"unsupported baseline format in {path}; expected "
            f'{{"version": {BASELINE_VERSION}, ...}}'
        )
    entries = payload.get("findings", [])
    counts: dict[tuple[str, str, str], int] = {}
    for entry in entries:
        try:
            fingerprint = (entry["path"], entry["rule"], entry["message"])
            count = int(entry["count"])
        except (TypeError, KeyError, ValueError) as exc:
            raise BaselineError(f"malformed baseline entry in {path}: {entry!r}") from exc
        counts[fingerprint] = counts.get(fingerprint, 0) + count
    return counts


def apply_baseline(
    findings: Sequence[Finding], baseline: dict[tuple[str, str, str], int]
) -> list[Finding]:
    """The findings not absorbed by ``baseline``, in input order."""
    budget = dict(baseline)
    new: list[Finding] = []
    for finding in findings:
        remaining = budget.get(finding.fingerprint, 0)
        if remaining > 0:
            budget[finding.fingerprint] = remaining - 1
        else:
            new.append(finding)
    return new
