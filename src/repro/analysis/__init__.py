"""Static analysis for the repo's reproducibility invariants.

Every guarantee the framework sells — bit-for-bit Gibbs chains across
engine backends, incremental-vs-rebuild equality, checkpoint/resume
exactness, single-threaded-equivalent service interleaving — rests on
invariants that example-based tests can only sample:

* RNG threading (no global :mod:`random` / ``np.random`` draws, no
  wall-clock reads, no iteration over unordered sets on result paths);
* paired cache invalidation (every mutator of a derived cache's backing
  fields must invalidate or patch the cache);
* checkpoint completeness (every mutable ``__init__`` attribute of a
  checkpointed class is covered by ``state_dict`` or explicitly excluded);
* lock discipline (hosted sessions are only touched under their lock);
* API-contract consistency (``SpecError`` field paths name real spec
  fields; the deprecated ``_legacy`` shims gain no new importers).

:mod:`repro.analysis` turns those invariants into machine-checked lint
rules over the stdlib :mod:`ast`.  Entry points:

* ``python -m repro lint`` — the CLI gate (see ``docs/ANALYSIS.md``);
* :func:`repro.analysis.api.run_lint` — the programmatic surface;
* :mod:`repro.analysis.contracts` — the runtime-side decorators
  (:func:`~repro.analysis.contracts.mutates`,
  :func:`~repro.analysis.contracts.derived_cache`,
  :func:`~repro.analysis.contracts.requires_lock`) that declare the
  cache and lock contracts the rules verify.

The package is stdlib-only so the lowest layers of the framework can
import :mod:`repro.analysis.contracts` without cycles or dependencies.
"""

from repro.analysis.contracts import derived_cache, mutates, requires_lock
from repro.analysis.findings import Finding, LintReport, Severity

__all__ = [
    "Finding",
    "LintReport",
    "Severity",
    "derived_cache",
    "mutates",
    "requires_lock",
]
